//! Baseline strategies the paper compares against.
//!
//! * [`aligned_direct_snr`] — both endpoints beam straight at each other:
//!   the LOS strategy (and what a static WHDI-class link does after its
//!   one-time setup).
//! * [`opt_nlos`] — the paper's "Opt. NLOS": try *every* combination of
//!   AP and headset beam directions (1° steps in the paper), ignore the
//!   direct direction, and keep the best wall-reflection SNR. This is the
//!   ceiling for any reflector-less beam-switching scheme (BeamSpy-style
//!   approaches), and Figs. 3 and 9 show it is not enough for VR.

use movr_math::wrap_deg_180;
use movr_phased_array::{Codebook, PatternTable};
use movr_radio::{evaluate_link, RadioEndpoint};
use movr_rfsim::Scene;

/// Steers both endpoints at each other and returns the resulting SNR (dB)
/// through the scene's current obstacle set.
pub fn aligned_direct_snr(scene: &Scene, ap: &mut RadioEndpoint, headset: &mut RadioEndpoint) -> f64 {
    ap.steer_toward(headset.position());
    headset.steer_toward(ap.position());
    evaluate_link(scene, ap, headset).snr_db
}

/// The outcome of an exhaustive NLOS beam search.
#[derive(Debug, Clone, Copy)]
pub struct NlosResult {
    /// Best SNR found, dB.
    pub snr_db: f64,
    /// AP beam at the best combination, absolute degrees.
    pub ap_deg: f64,
    /// Headset beam at the best combination, absolute degrees.
    pub headset_deg: f64,
    /// Number of beam combinations evaluated.
    pub combinations: usize,
}

/// Exhaustive (AP × headset) beam sweep, excluding combinations where
/// *both* beams point within `exclude_cone_deg` of the direct bearing
/// (the paper "ignores the direction of the line-of-sight").
///
/// Pass `exclude_cone_deg = 0.0` to allow the direct direction too.
pub fn opt_nlos(
    scene: &Scene,
    ap: &RadioEndpoint,
    headset: &RadioEndpoint,
    ap_codebook: &Codebook,
    headset_codebook: &Codebook,
    exclude_cone_deg: f64,
) -> NlosResult {
    let direct_ap = ap.position().bearing_deg_to(headset.position());
    let direct_hs = headset.position().bearing_deg_to(ap.position());

    let mut best = NlosResult {
        snr_db: f64::NEG_INFINITY,
        ap_deg: direct_ap,
        headset_deg: direct_hs,
        combinations: 0,
    };

    // One trace and two codebook-page gain tables cover the whole
    // search: the link is frozen into a tap batch and both sides' pages
    // are evaluated against the fixed path bearings with the SoA batch
    // kernels up front. Each combination below is two slice lookups and
    // one multiply-accumulate pass — bit-identical to steering live
    // endpoints through `evaluate_link`.
    let link = scene.trace_link(ap.position(), headset.position()).batch();
    let ap_table = PatternTable::new(ap.array(), ap_codebook);
    let hs_table = PatternTable::new(headset.array(), headset_codebook);
    let ap_page = ap_table.fill_page(link.departure_deg());
    let hs_page = hs_table.fill_page(link.arrival_deg());

    for (i, (a, _)) in ap_table.entries().enumerate() {
        let ap_is_direct = wrap_deg_180(a - direct_ap).abs() <= exclude_cone_deg;
        for (j, (h, _)) in hs_table.entries().enumerate() {
            let hs_is_direct = wrap_deg_180(h - direct_hs).abs() <= exclude_cone_deg;
            if ap_is_direct && hs_is_direct {
                continue;
            }
            best.combinations += 1;
            let snr = link
                .eval(ap.tx_power_dbm(), ap_page.row(i), hs_page.row(j))
                .snr_db;
            if snr > best.snr_db {
                best.snr_db = snr;
                best.ap_deg = a;
                best.headset_deg = h;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use movr_math::Vec2;
    use movr_rfsim::{BodyPart, Obstacle};

    fn endpoints() -> (RadioEndpoint, RadioEndpoint) {
        (
            RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 0.0),
            RadioEndpoint::paper_radio(Vec2::new(4.5, 2.5), 180.0),
        )
    }

    fn coarse_books(ap: &RadioEndpoint, hs: &RadioEndpoint) -> (Codebook, Codebook) {
        let a0 = ap.array().boresight_deg();
        let h0 = hs.array().boresight_deg();
        (
            Codebook::sweep(a0 - 48.0, a0 + 48.0, 4.0),
            Codebook::sweep(h0 - 48.0, h0 + 48.0, 4.0),
        )
    }

    #[test]
    fn direct_beats_nlos_when_clear() {
        let scene = Scene::paper_office();
        let (mut ap, mut hs) = endpoints();
        let direct = aligned_direct_snr(&scene, &mut ap, &mut hs);
        let (cb_a, cb_h) = coarse_books(&ap, &hs);
        let nlos = opt_nlos(&scene, &ap, &hs, &cb_a, &cb_h, 7.0);
        assert!(
            direct - nlos.snr_db > 8.0,
            "direct={direct} nlos={}",
            nlos.snr_db
        );
    }

    #[test]
    fn nlos_survives_blockage_better_than_direct() {
        let mut scene = Scene::paper_office();
        let (mut ap, mut hs) = endpoints();
        scene.add_obstacle(Obstacle::new(BodyPart::Torso, Vec2::new(2.5, 2.5)));
        let direct = aligned_direct_snr(&scene, &mut ap, &mut hs);
        let (cb_a, cb_h) = coarse_books(&ap, &hs);
        let nlos = opt_nlos(&scene, &ap, &hs, &cb_a, &cb_h, 7.0);
        // A torso on the LOS costs ~30 dB; a wall bounce only pays
        // reflection + extra distance (~15 dB below clear LOS).
        assert!(
            nlos.snr_db > direct + 5.0,
            "nlos={} direct={direct}",
            nlos.snr_db
        );
    }

    #[test]
    fn nlos_is_well_below_clear_los() {
        // Fig. 3 / Fig. 9: best NLOS sits far below the unblocked LOS.
        let mut scene = Scene::paper_office();
        let (mut ap, mut hs) = endpoints();
        let clear = aligned_direct_snr(&scene, &mut ap, &mut hs);
        scene.add_obstacle(Obstacle::new(BodyPart::Torso, Vec2::new(2.5, 2.5)));
        let (cb_a, cb_h) = coarse_books(&ap, &hs);
        let nlos = opt_nlos(&scene, &ap, &hs, &cb_a, &cb_h, 7.0);
        let drop = clear - nlos.snr_db;
        assert!(drop > 8.0, "NLOS should cost >8 dB, got {drop}");
    }

    #[test]
    fn exclusion_cone_rules_out_direct_pair() {
        let scene = Scene::paper_office();
        let (ap, hs) = endpoints();
        let (cb_a, cb_h) = coarse_books(&ap, &hs);
        let all = opt_nlos(&scene, &ap, &hs, &cb_a, &cb_h, 0.0);
        let excl = opt_nlos(&scene, &ap, &hs, &cb_a, &cb_h, 7.0);
        assert!(excl.combinations < all.combinations);
        // With no exclusion the search rediscovers the direct link.
        assert!(all.snr_db >= excl.snr_db);
    }

    #[test]
    fn best_beams_reported_are_achievable() {
        let scene = Scene::paper_office();
        let (ap, hs) = endpoints();
        let (cb_a, cb_h) = coarse_books(&ap, &hs);
        let r = opt_nlos(&scene, &ap, &hs, &cb_a, &cb_h, 7.0);
        // Re-applying the reported beams reproduces the reported SNR.
        let mut ap2 = ap;
        let mut hs2 = hs;
        ap2.steer_to(r.ap_deg);
        hs2.steer_to(r.headset_deg);
        let snr = evaluate_link(&scene, &ap2, &hs2).snr_db;
        assert!((snr - r.snr_db).abs() < 1e-9);
    }
}
