//! The MoVR reflector device.
//!
//! Two steerable phased arrays (receive and transmit) joined by a
//! variable-gain amplifier, plus the control-side bits the Arduino sees:
//! a DAC setting the gain, a current sensor watching the amplifier, and
//! an on/off modulator. No transmit or receive baseband chains — the
//! device can only *reflect* (§4).

use movr_analog::{CurrentSensor, LeakageSurface, VariableGainAmplifier};
use movr_math::Vec2;
use movr_phased_array::SteeredArray;

/// A wall-mounted MoVR reflector.
#[derive(Debug, Clone)]
pub struct MovrReflector {
    position: Vec2,
    rx_array: SteeredArray,
    tx_array: SteeredArray,
    amplifier: VariableGainAmplifier,
    leakage: LeakageSurface,
    current_sensor: CurrentSensor,
    /// True while the backscatter modulator toggles the amplifier at f₂.
    modulating: bool,
}

impl MovrReflector {
    /// Mounts a reflector at `position` with both arrays' broadside facing
    /// `boresight_deg` (into the room). `device_seed` individualises the
    /// leakage surface and sensor noise, as two physical units differ.
    pub fn wall_mounted(position: Vec2, boresight_deg: f64, device_seed: u64) -> Self {
        MovrReflector {
            position,
            rx_array: SteeredArray::paper_array(boresight_deg),
            tx_array: SteeredArray::paper_array(boresight_deg),
            amplifier: VariableGainAmplifier::default(),
            leakage: LeakageSurface::new(device_seed),
            current_sensor: CurrentSensor::new(device_seed.wrapping_add(1)),
            modulating: false,
        }
    }

    /// Where the reflector is mounted.
    pub fn position(&self) -> Vec2 {
        self.position
    }

    /// The receive-side array.
    pub fn rx_array(&self) -> &SteeredArray {
        &self.rx_array
    }

    /// The transmit-side array.
    pub fn tx_array(&self) -> &SteeredArray {
        &self.tx_array
    }

    /// Steers the receive beam to an absolute bearing; returns the applied
    /// (clamped) bearing.
    pub fn steer_rx(&mut self, absolute_deg: f64) -> f64 {
        self.rx_array.steer_to(absolute_deg)
    }

    /// Steers the transmit beam to an absolute bearing; returns the
    /// applied (clamped) bearing.
    pub fn steer_tx(&mut self, absolute_deg: f64) -> f64 {
        self.tx_array.steer_to(absolute_deg)
    }

    /// Steers both beams to the same bearing — the alignment-protocol
    /// posture ("sets the reflector's receive and transmit beams to the
    /// same direction, say θ₁", §4.1).
    pub fn steer_both(&mut self, absolute_deg: f64) -> f64 {
        self.steer_rx(absolute_deg);
        self.steer_tx(absolute_deg)
    }

    /// The amplifier (read access).
    pub fn amplifier(&self) -> &VariableGainAmplifier {
        &self.amplifier
    }

    /// Commands the amplifier gain (clamped); returns the applied value.
    pub fn set_gain_db(&mut self, gain_db: f64) -> f64 {
        self.amplifier.set_gain_db(gain_db)
    }

    /// Powers the amplifier on/off.
    pub fn set_amplifier_enabled(&mut self, enabled: bool) {
        self.amplifier.set_enabled(enabled);
    }

    /// Starts/stops the f₂ on/off modulation used during alignment.
    pub fn set_modulating(&mut self, on: bool) {
        self.modulating = on;
    }

    /// True while modulating.
    pub fn is_modulating(&self) -> bool {
        self.modulating
    }

    /// Antenna-to-antenna TX→RX coupling attenuation (positive dB) at the
    /// current beam settings — the raw leakage surface.
    pub fn antenna_leakage_db(&self) -> f64 {
        self.leakage
            .attenuation_db(self.tx_array.steering_deg(), self.rx_array.steering_deg())
    }

    /// Total insertion loss of the signal path through both arrays'
    /// phase shifters, dB.
    pub fn insertion_loss_db(&self) -> f64 {
        self.rx_array.array().shifter().insertion_loss_db
            + self.tx_array.array().shifter().insertion_loss_db
    }

    /// The attenuation of the full feedback loop the amplifier sees
    /// (positive dB): amplifier → TX shifters → antenna coupling → RX
    /// shifters → amplifier. This is what Fig. 7 measures terminal to
    /// terminal, and what the §4.2 criterion `G_dB < L_dB` compares
    /// against. The firmware cannot read it — only the current sensor.
    pub fn loop_attenuation_db(&self) -> f64 {
        self.antenna_leakage_db() + self.insertion_loss_db()
    }

    /// True if the amplifier is saturated at the current gain and beams.
    pub fn is_saturated(&self) -> bool {
        self.amplifier.is_saturated(self.loop_attenuation_db())
    }

    /// The *effective* end-to-end amplification applied to a through
    /// signal, dB: the closed-loop gain when stable, minus the shifter
    /// insertion losses the signal pays crossing both arrays. `None` when
    /// saturated (output is garbage, not signal) or when the amplifier is
    /// off.
    pub fn effective_gain_db(&self) -> Option<f64> {
        if !self.amplifier.is_enabled() {
            return None;
        }
        movr_analog::FeedbackLoop::new(self.amplifier.gain_db(), self.loop_attenuation_db())
            .closed_loop_gain_db()
            .map(|g| g - self.insertion_loss_db())
    }

    /// The current sensor's noise-stream RNG state, for checkpointing.
    pub fn sensor_rng_state(&self) -> [u64; 4] {
        self.current_sensor.rng_state()
    }

    /// Restores the sensor noise stream from a
    /// [`MovrReflector::sensor_rng_state`] capture, so resumed gain-control
    /// runs draw the same measurement noise the uninterrupted device would.
    pub fn restore_sensor_rng_state(&mut self, state: [u64; 4]) {
        self.current_sensor.restore_rng_state(state);
    }

    /// What the firmware reads off the current sensor right now, amperes.
    pub fn measure_supply_current_a(&mut self) -> f64 {
        let true_current = self
            .amplifier
            .supply_current_a(self.loop_attenuation_db());
        self.current_sensor.measure_a(true_current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> MovrReflector {
        MovrReflector::wall_mounted(Vec2::new(4.5, 4.5), 225.0, 42)
    }

    /// Shortest-arc angular difference, degrees.
    fn arc(a: f64, b: f64) -> f64 {
        movr_math::wrap_deg_180(a - b).abs()
    }

    #[test]
    fn steering_both_moves_both() {
        let mut r = device();
        let applied = r.steer_both(200.0);
        assert!(arc(r.rx_array().steering_deg(), 200.0) < 1e-9);
        assert!(arc(r.tx_array().steering_deg(), 200.0) < 1e-9);
        assert!(arc(applied, 200.0) < 1e-9);
    }

    #[test]
    fn independent_beam_steering() {
        let mut r = device();
        r.steer_rx(225.0 - 30.0);
        r.steer_tx(225.0 + 30.0);
        assert!(arc(r.rx_array().steering_deg(), 195.0) < 1e-9);
        assert!(arc(r.tx_array().steering_deg(), 255.0) < 1e-9);
    }

    #[test]
    fn leakage_changes_with_beams() {
        let mut r = device();
        r.steer_both(225.0);
        let a = r.loop_attenuation_db();
        r.steer_tx(255.0);
        let b = r.loop_attenuation_db();
        assert_ne!(a, b);
    }

    #[test]
    fn saturation_follows_gain_vs_leakage() {
        let mut r = device();
        r.steer_both(225.0);
        let leak = r.loop_attenuation_db();
        r.set_gain_db(leak - 5.0);
        assert!(!r.is_saturated());
        assert!(r.effective_gain_db().is_some());
        r.set_gain_db(r.amplifier().max_gain_db.min(leak + 2.0));
        if r.amplifier().gain_db() >= leak {
            assert!(r.is_saturated());
            assert_eq!(r.effective_gain_db(), None);
        }
    }

    #[test]
    fn effective_gain_accounts_for_regeneration_and_insertion() {
        // Effective gain = closed-loop gain minus the shifter insertion
        // losses: regeneration lifts it above (G − insertion), insertion
        // keeps it below the raw closed-loop value.
        let mut r = device();
        r.steer_both(225.0);
        r.set_gain_db((r.loop_attenuation_db() - 3.0).min(r.amplifier().max_gain_db));
        let g = r.amplifier().gain_db();
        let eff = r.effective_gain_db().unwrap();
        let closed = movr_analog::FeedbackLoop::new(g, r.loop_attenuation_db())
            .closed_loop_gain_db()
            .unwrap();
        assert!(eff > g - r.insertion_loss_db(), "regeneration must help");
        assert!(eff < closed, "insertion loss must be paid");
        assert!((eff - (closed - r.insertion_loss_db())).abs() < 1e-9);
    }

    #[test]
    fn disabled_amplifier_has_no_gain() {
        let mut r = device();
        r.set_amplifier_enabled(false);
        assert_eq!(r.effective_gain_db(), None);
        assert!(!r.is_saturated());
    }

    #[test]
    fn current_rises_near_saturation() {
        // Find a beam posture whose loop attenuation the amplifier can
        // actually approach (the surface varies ~20 dB across beams).
        let mut r = device();
        let mut best = (f64::INFINITY, 225.0);
        for k in 0..=100 {
            let tx = 175.0 + k as f64;
            r.steer_rx(225.0);
            r.steer_tx(tx);
            let l = r.loop_attenuation_db();
            if l < best.0 {
                best = (l, tx);
            }
        }
        assert!(
            best.0 - 0.5 < r.amplifier().max_gain_db,
            "no reachable knee anywhere: min loop {}",
            best.0
        );
        r.steer_rx(225.0);
        r.steer_tx(best.1);
        let leak = r.loop_attenuation_db();
        r.set_gain_db(leak - 20.0);
        let far = r.measure_supply_current_a();
        r.set_gain_db(leak - 0.5);
        let near = r.measure_supply_current_a();
        assert!(near > far + 0.05, "near={near} far={far}");
    }

    #[test]
    fn modulation_flag() {
        let mut r = device();
        assert!(!r.is_modulating());
        r.set_modulating(true);
        assert!(r.is_modulating());
    }
}
