//! Current-sensing gain control (§4.2).
//!
//! The amplifier gain must stay below the TX→RX leakage attenuation or
//! the feedback loop saturates — but the reflector has no receive chain
//! to measure the leakage, and the leakage moves by ~20 dB as the beams
//! steer (Fig. 7). The paper's solution exploits the amplifier's supply
//! current, which "suddenly goes high" approaching saturation:
//!
//! > set the gain to the minimum, then increase it step by step while
//! > monitoring the amplifier's current consumption ... keep the
//! > amplification gain just below this point.
//!
//! [`run_gain_control`] is that loop, operating only on what the firmware
//! can actually observe (the quantised, noisy current sensor).

use crate::reflector::MovrReflector;
use movr_obs::{Event, NullRecorder, Recorder};
use movr_sim::SimTime;

/// Gain-control loop parameters.
#[derive(Debug, Clone, Copy)]
pub struct GainControlConfig {
    /// Gain increase per step, dB.
    pub step_db: f64,
    /// Current jump (amperes) between consecutive steps that signals the
    /// saturation knee. Must clear sensor noise by a wide margin.
    pub jump_threshold_a: f64,
    /// Extra gain backed off below the detected knee, dB.
    pub backoff_db: f64,
    /// Sensor reads averaged per step (noise suppression).
    pub reads_per_step: usize,
}

impl Default for GainControlConfig {
    fn default() -> Self {
        GainControlConfig {
            step_db: 0.5,
            jump_threshold_a: 0.03,
            backoff_db: 1.0,
            reads_per_step: 3,
        }
    }
}

/// The outcome of one gain-control run.
#[derive(Debug, Clone)]
pub struct GainControlResult {
    /// The gain finally applied, dB.
    pub chosen_gain_db: f64,
    /// True if the loop stopped because it detected the saturation knee
    /// (false = it ran into the amplifier's own gain ceiling first).
    pub knee_detected: bool,
    /// The (gain, measured current) trajectory, for inspection/benches.
    pub trace: Vec<(f64, f64)>,
}

/// Runs the §4.2 loop on the reflector *in place*: on return, the
/// amplifier is set to the chosen safe gain.
///
/// ```
/// use movr::gain_control::{run_gain_control, GainControlConfig};
/// use movr::reflector::MovrReflector;
/// use movr_math::Vec2;
///
/// let mut reflector = MovrReflector::wall_mounted(Vec2::new(1.0, 4.75), -70.0, 1);
/// reflector.steer_rx(-102.0);
/// reflector.steer_tx(-45.0);
/// let result = run_gain_control(&mut reflector, &GainControlConfig::default());
/// // The invariant the whole design rests on: G stays below the loop
/// // leakage, without the firmware ever measuring the leakage.
/// assert!(result.chosen_gain_db < reflector.loop_attenuation_db());
/// assert!(!reflector.is_saturated());
/// ```
pub fn run_gain_control(
    reflector: &mut MovrReflector,
    config: &GainControlConfig,
) -> GainControlResult {
    run_gain_control_recorded(reflector, config, SimTime::ZERO, &mut NullRecorder)
}

/// [`run_gain_control`] with observability: wraps the ramp in a
/// `gain_ramp` span at `now`, emits one `gain_step` event per probed
/// gain setting (`gain_db`, `current_a`), and closes with either
/// `gain_backoff` (knee found; `chosen_gain_db`, `knee_gain_db`) or
/// `gain_ceiling` (`chosen_gain_db`). The loop itself is modelled as
/// instantaneous, so every event carries the same timestamp — the span
/// conveys structure, not duration. Identical control behaviour: the
/// recorder never reads the sensor or the RNG.
pub fn run_gain_control_recorded(
    reflector: &mut MovrReflector,
    config: &GainControlConfig,
    now: SimTime,
    rec: &mut dyn Recorder,
) -> GainControlResult {
    assert!(config.step_db > 0.0, "gain step must be positive");
    assert!(config.reads_per_step >= 1, "need at least one read per step");

    let min_gain = reflector.amplifier().min_gain_db;
    let max_gain = reflector.amplifier().max_gain_db;

    let read_avg = |r: &mut MovrReflector| -> f64 {
        let mut acc = 0.0;
        for _ in 0..config.reads_per_step {
            acc += r.measure_supply_current_a();
        }
        acc / movr_math::convert::usize_to_f64(config.reads_per_step)
    };

    let span = if rec.enabled() {
        Some(rec.start_span(now, "gain_ramp"))
    } else {
        None
    };
    let step = |rec: &mut dyn Recorder, gain: f64, current: f64| {
        if rec.enabled() {
            rec.record(
                Event::new(now, "gain_step")
                    .with("gain_db", gain)
                    .with("current_a", current),
            );
        }
    };

    let mut gain = reflector.set_gain_db(min_gain);
    let mut prev_current = read_avg(reflector);
    let mut trace = vec![(gain, prev_current)];
    step(rec, gain, prev_current);

    loop {
        if gain >= max_gain {
            // Ceiling reached without a knee: the leakage is deeper than
            // the amplifier can chase; the maximum gain is safe.
            if let Some(id) = span {
                rec.record(
                    Event::new(now, "gain_ceiling").with("chosen_gain_db", gain),
                );
                rec.end_span(now, "gain_ramp", id);
            }
            return GainControlResult {
                chosen_gain_db: gain,
                knee_detected: false,
                trace,
            };
        }
        gain = reflector.set_gain_db(gain + config.step_db);
        let current = read_avg(reflector);
        trace.push((gain, current));
        step(rec, gain, current);

        if current - prev_current > config.jump_threshold_a {
            // Knee: step back below the last safe gain with margin.
            let safe = (gain - config.step_db - config.backoff_db).max(min_gain);
            let chosen = reflector.set_gain_db(safe);
            if let Some(id) = span {
                rec.record(
                    Event::new(now, "gain_backoff")
                        .with("chosen_gain_db", chosen)
                        .with("knee_gain_db", gain),
                );
                rec.end_span(now, "gain_ramp", id);
            }
            return GainControlResult {
                chosen_gain_db: chosen,
                knee_detected: true,
                trace,
            };
        }
        prev_current = current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use movr_math::Vec2;

    fn device(seed: u64) -> MovrReflector {
        let mut r = MovrReflector::wall_mounted(Vec2::new(4.5, 4.5), 225.0, seed);
        r.steer_both(225.0);
        r
    }

    #[test]
    fn chosen_gain_is_stable() {
        // The §4.2 invariant: the loop must land strictly below the
        // leakage attenuation, without ever having been told what it is.
        for seed in 0..20 {
            let mut r = device(seed);
            let res = run_gain_control(&mut r, &GainControlConfig::default());
            let leak = r.loop_attenuation_db();
            assert!(
                res.chosen_gain_db < leak,
                "seed={seed}: chose {} vs leakage {leak}",
                res.chosen_gain_db
            );
            assert!(!r.is_saturated());
        }
    }

    #[test]
    fn lands_close_below_the_knee() {
        // Not just safe but *efficient*: within a few dB of the leakage
        // (the algorithm maximises SNR subject to stability).
        let mut r = device(3);
        let res = run_gain_control(&mut r, &GainControlConfig::default());
        let leak = r.loop_attenuation_db();
        if res.knee_detected {
            let margin = leak - res.chosen_gain_db;
            assert!(
                (0.5..6.0).contains(&margin),
                "margin {margin} dB (leak {leak}, chose {})",
                res.chosen_gain_db
            );
        }
    }

    #[test]
    fn detects_knee_when_leakage_within_range() {
        // Default VGA tops out at 45 dB; leakage surfaces bottom out at
        // 45 dB, so most beam pairs put the knee inside the sweep.
        let mut any_knee = false;
        for seed in 0..10 {
            let mut r = device(seed);
            let res = run_gain_control(&mut r, &GainControlConfig::default());
            any_knee |= res.knee_detected;
        }
        assert!(any_knee, "expected at least one knee detection");
    }

    #[test]
    fn trace_is_monotone_in_gain() {
        let mut r = device(7);
        let res = run_gain_control(&mut r, &GainControlConfig::default());
        for w in res.trace.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
        assert!(res.trace.len() >= 2);
    }

    #[test]
    fn rerun_after_beam_change_adapts() {
        // Fig. 7's point: change the beams, the leakage changes, and the
        // safe gain changes with it.
        let mut r = device(9);
        let g1 = run_gain_control(&mut r, &GainControlConfig::default()).chosen_gain_db;
        r.steer_tx(255.0);
        let g2 = run_gain_control(&mut r, &GainControlConfig::default()).chosen_gain_db;
        // Both safe...
        assert!(!r.is_saturated());
        // ...and generally different (the surfaces differ by several dB).
        assert!(
            (g1 - g2).abs() > 0.25,
            "g1={g1} g2={g2} — expected the safe gain to move"
        );
    }

    #[test]
    fn respects_gain_ceiling() {
        let mut r = device(11);
        let res = run_gain_control(&mut r, &GainControlConfig::default());
        assert!(res.chosen_gain_db <= r.amplifier().max_gain_db);
        assert!(res.chosen_gain_db >= r.amplifier().min_gain_db);
    }

    #[test]
    fn recorded_run_matches_plain_and_traces_every_step() {
        use movr_obs::MemoryRecorder;
        use movr_sim::SimTime;
        // Same seed: the recorded run must reproduce the plain run's
        // trajectory exactly, and emit one gain_step per trace point.
        let plain = run_gain_control(&mut device(5), &GainControlConfig::default());
        let mut rec = MemoryRecorder::new();
        let recorded = run_gain_control_recorded(
            &mut device(5),
            &GainControlConfig::default(),
            SimTime::from_millis(20),
            &mut rec,
        );
        assert_eq!(plain.chosen_gain_db, recorded.chosen_gain_db);
        assert_eq!(plain.knee_detected, recorded.knee_detected);
        assert_eq!(plain.trace, recorded.trace);
        assert_eq!(rec.of_kind("gain_step").count(), recorded.trace.len());
        let spans = rec.spans();
        assert_eq!(spans, [("gain_ramp", SimTime::from_millis(20), SimTime::from_millis(20))]);
        let terminal = if recorded.knee_detected {
            "gain_backoff"
        } else {
            "gain_ceiling"
        };
        assert_eq!(rec.of_kind(terminal).count(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_rejected() {
        let mut r = device(0);
        run_gain_control(
            &mut r,
            &GainControlConfig {
                step_db: 0.0,
                ..Default::default()
            },
        );
    }
}
