//! Session checkpoint/restore.
//!
//! Serialises a [`Session`]'s entire mutable state ([`SessionState`]) to
//! a versioned, zero-dependency binary format and restores it
//! bit-identically: the resumed session draws the same RNG sequences,
//! accumulates the same f64 bit patterns, and records the same timeline
//! as the uninterrupted run (property-tested in `tests/checkpoint.rs`).
//!
//! ## Format (version 1)
//!
//! Little-endian throughout; f64s are stored as raw `to_bits` patterns
//! (NaN payloads, `-0.0`, and infinities survive verbatim); strings and
//! byte fields are length-prefixed.
//!
//! | offset | field |
//! |---|---|
//! | 0 | magic `"MOVRSNAP"` (8 bytes, as a little-endian u64) |
//! | 8 | format version (u32) |
//! | 12 | [`config_fingerprint`] of the capturing [`SessionConfig`] (u64) |
//! | 20 | body: clock, accumulators, RNG streams, adapter, event queue, metrics, system checkpoint |
//! | len−8 | FNV-1a 64 checksum of everything before it |
//!
//! Restore checks, in order: buffer length → magic → version → checksum
//! → config fingerprint → body decode — so *any* single-byte corruption
//! yields a structured [`SnapshotError`], never a panic.
//!
//! ## What is (and isn't) in a snapshot
//!
//! **In:** every value the frame loop mutates — sim clock and pending
//! events, RNG streams (SNR reports, tracker noise, fault injection,
//! sensor noise), rate-adapter state, glitch tracker, metric counters and
//! histograms (exact Welford state), beam steering, amplifier gain,
//! in-flight beam commands, tracker/predictor history, scene obstacles.
//!
//! **Out:** everything derivable from construction inputs — the
//! [`SessionConfig`] (only its fingerprint is stored), deployment
//! geometry and calibration, rate tables, and the motion trace. A
//! restore target must be built from the same config, deployment, and
//! trace; the fingerprint and deployment-shape checks catch mismatches.
//!
//! ## Versioning policy
//!
//! The version bumps on **any** byte-layout change, field addition, or
//! semantic change to an existing field; there are no in-version
//! extensions. Readers reject other versions outright
//! ([`SnapshotError::UnsupportedVersion`] names both sides) rather than
//! attempt migration — a snapshot is a short-lived mid-run artifact, not
//! an archival format.

use crate::session::{AdapterImpl, RatePolicy, Session, SessionConfig, SessionEvent, SessionState, Strategy};
use crate::system::{LinkMode, MovrSystem, ReflectorCheckpoint, SystemCheckpoint};
use movr_math::{fnv1a64, SimRng, Summary, WireError, WireReader, WireWriter};
use movr_motion::TrackedPose;
use movr_obs::{Histogram, MetricsRegistry};
use movr_rfsim::{BodyPart, Obstacle};
use movr_sim::{EventQueue, SimTime};
use movr_vr::GlitchTracker;
use std::fmt;

/// The snapshot format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// `"MOVRSNAP"` as a little-endian u64 — the first eight bytes.
const MAGIC: u64 = u64::from_le_bytes(*b"MOVRSNAP");

/// Minimum plausible snapshot: header (8 + 4 + 8) plus checksum footer.
const MIN_LEN: usize = 8 + 4 + 8 + 8;

/// Every metric name a session registry can contain. Registry keys are
/// `&'static str`; decoded names are interned against this list so a
/// restored registry points at the same statics the live loop uses.
const METRIC_NAMES: [&str; 12] = [
    "frames_total",
    "frames_delivered",
    "frames_missed",
    "mode_switches",
    "realignments",
    "reflector_frames",
    "rate_up",
    "rate_down",
    "rate_outage",
    "frame_snr_db",
    "frame_airtime_ns",
    "realign_stall_ns",
];

/// Why a snapshot failed to restore. Every variant is a structured,
/// non-panicking rejection of external bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer cannot even hold the header and checksum footer.
    TooShort {
        /// The buffer length actually presented.
        len: usize,
    },
    /// The first eight bytes are not the `MOVRSNAP` magic.
    BadMagic,
    /// The format version is not the one this build reads.
    UnsupportedVersion {
        /// The version the snapshot claims.
        found: u32,
    },
    /// The FNV-1a footer does not match the payload.
    ChecksumMismatch,
    /// The snapshot was captured under a different [`SessionConfig`].
    ConfigMismatch {
        /// Fingerprint of the config offered at restore.
        expected: u64,
        /// Fingerprint stored in the snapshot.
        found: u64,
    },
    /// The body failed to decode or validate.
    Malformed {
        /// What was wrong.
        what: String,
    },
    /// The body decoded, but does not fit the deployment it was offered
    /// (e.g. a different reflector count).
    SystemMismatch {
        /// What did not fit.
        what: &'static str,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::TooShort { len } => write!(
                f,
                "snapshot too short: {len} bytes cannot hold a header and checksum"
            ),
            SnapshotError::BadMagic => write!(f, "not a MoVR snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "snapshot format version {found} is not supported \
                 (this build reads format version {FORMAT_VERSION})"
            ),
            SnapshotError::ChecksumMismatch => {
                write!(f, "snapshot checksum mismatch: the bytes are corrupted")
            }
            SnapshotError::ConfigMismatch { expected, found } => write!(
                f,
                "snapshot was captured under a different session config \
                 (fingerprint {found:#018x}, restore offered {expected:#018x})"
            ),
            SnapshotError::Malformed { what } => write!(f, "malformed snapshot body: {what}"),
            SnapshotError::SystemMismatch { what } => {
                write!(f, "snapshot does not fit the deployment: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> Self {
        SnapshotError::Malformed {
            what: e.to_string(),
        }
    }
}

fn malformed(what: impl Into<String>) -> SnapshotError {
    SnapshotError::Malformed { what: what.into() }
}

/// The session checkpoint codec: [`Snapshot::capture`] freezes a
/// [`Session`] to bytes, [`Snapshot::restore`] reassembles one that
/// continues bit-identically.
pub struct Snapshot;

impl Snapshot {
    /// Serialises the session's entire mutable state. The bytes embed
    /// the format version, a fingerprint of the session's config, and a
    /// trailing checksum.
    pub fn capture(session: &Session) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(MAGIC);
        w.u32(FORMAT_VERSION);
        w.u64(config_fingerprint(session.config()));
        encode_state(&mut w, session.state());
        w.finish_with_checksum()
    }

    /// Restores a capture onto the canonical paper deployment built from
    /// `config.system` (the [`Session::new`] analogue).
    pub fn restore(bytes: &[u8], config: &SessionConfig) -> Result<Session, SnapshotError> {
        Snapshot::restore_on(bytes, MovrSystem::paper_setup(config.system), config)
    }

    /// Restores a capture onto a caller-built deployment, which must
    /// match the capturing session's (same reflector count and, for the
    /// resume to be exact, same geometry and calibration).
    pub fn restore_on(
        bytes: &[u8],
        system: MovrSystem,
        config: &SessionConfig,
    ) -> Result<Session, SnapshotError> {
        if bytes.len() < MIN_LEN {
            return Err(SnapshotError::TooShort { len: bytes.len() });
        }
        // Header sanity first (magic, version) so "not a snapshot at
        // all" and "a snapshot from another format era" are named as
        // such rather than as checksum noise…
        let mut head = WireReader::new(bytes);
        if head.u64()? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = head.u32()?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        // …then the checksum over the whole payload, so everything after
        // this point reads verified bytes.
        let mut r = match WireReader::verify_checksum_footer(bytes) {
            Err(_) => return Err(SnapshotError::TooShort { len: bytes.len() }),
            Ok(None) => return Err(SnapshotError::ChecksumMismatch),
            Ok(Some(r)) => r,
        };
        let _ = r.u64()?; // magic, re-read within the payload view
        let _ = r.u32()?; // version
        let found = r.u64()?;
        let expected = config_fingerprint(config);
        if found != expected {
            return Err(SnapshotError::ConfigMismatch { expected, found });
        }
        let state = decode_state(&mut r, system, config)?;
        if r.remaining() != 0 {
            return Err(malformed(format!(
                "{} trailing bytes after the decoded state",
                r.remaining()
            )));
        }
        Ok(Session::from_parts(*config, state))
    }
}

/// Canonical fingerprint of a [`SessionConfig`]: FNV-1a 64 over the
/// wire-encoded fields. Two configs fingerprint equal iff every field —
/// strategy, traffic, latency budget, system knobs, rate policy,
/// framing, report noise — is bit-identical; a snapshot refuses to
/// restore under a config that fingerprints differently.
pub fn config_fingerprint(config: &SessionConfig) -> u64 {
    let mut w = WireWriter::new();
    match config.strategy {
        Strategy::Tethered => w.u8(0),
        Strategy::DirectOnly => w.u8(1),
        Strategy::Movr { tracking } => {
            w.u8(2);
            w.bool(tracking);
        }
    }
    w.f64(config.traffic.refresh_hz);
    w.f64(config.traffic.frame_bits);
    w.u64(config.latency.budget.as_nanos());
    w.u64(config.latency.processing.as_nanos());
    let s = &config.system;
    w.f64(s.snr_switch_threshold_db);
    w.bool(s.use_tracking);
    w.bool(s.use_prediction);
    w.f64(s.gain_control.step_db);
    w.f64(s.gain_control.jump_threshold_a);
    w.f64(s.gain_control.backoff_db);
    w.usize(s.gain_control.reads_per_step);
    w.f64(s.realign_window_deg);
    w.u64(s.beam_command_latency.as_nanos());
    w.u64(s.sweep_dwell.as_nanos());
    w.f64(s.command_loss_probability);
    w.u64(s.seed);
    match config.rate_policy {
        RatePolicy::Oracle => w.u8(0),
        RatePolicy::Threshold { backoff_db } => {
            w.u8(1);
            w.f64(backoff_db);
        }
        RatePolicy::HysteresisPolicy {
            up_margin_db,
            up_count,
            backoff_db,
        } => {
            w.u8(2);
            w.f64(up_margin_db);
            w.usize(up_count);
            w.f64(backoff_db);
        }
    }
    w.u64(config.framing.preamble_ns);
    w.u64(config.framing.header_ns);
    w.u64(config.framing.sifs_ns);
    w.u64(config.framing.max_psdu_bits);
    w.f64(config.snr_report_sigma_db);
    fnv1a64(w.bytes())
}

// --- body encoding ---------------------------------------------------------

fn encode_rng(w: &mut WireWriter, s: [u64; 4]) {
    for word in s {
        w.u64(word);
    }
}

fn encode_mode(w: &mut WireWriter, mode: LinkMode) {
    match mode {
        LinkMode::Direct => w.u8(1),
        LinkMode::Reflector(i) => {
            w.u8(2);
            w.usize(i);
        }
    }
}

fn encode_pose(w: &mut WireWriter, pose: TrackedPose) {
    w.f64(pose.center.x);
    w.f64(pose.center.y);
    w.f64(pose.yaw_deg);
}

fn body_part_tag(kind: BodyPart) -> u8 {
    match kind {
        BodyPart::Hand => 0,
        BodyPart::Head => 1,
        BodyPart::Torso => 2,
        BodyPart::Furniture => 3,
        BodyPart::MetalFurniture => 4,
    }
}

fn encode_state(w: &mut WireWriter, st: &SessionState) {
    // Clock and pending events (pop order is the canonical order; the
    // (timestamp, insertion) tie-break is re-minted on restore).
    w.u64(st.queue.now().as_nanos());
    let pending = st.queue.pending_in_pop_order();
    w.usize(pending.len());
    for (at, event) in pending {
        w.u64(at.as_nanos());
        match event {
            SessionEvent::Frame => w.u8(0),
        }
    }

    // Frame-loop accumulators.
    w.usize(st.frames);
    w.usize(st.mode_switches);
    w.usize(st.realignments);
    w.usize(st.reflector_frames);
    w.f64(st.snr_sum);
    w.f64(st.snr_min);
    match st.last_mode {
        None => w.u8(0),
        Some(mode) => encode_mode(w, mode),
    }
    w.u64(st.blocked_until.as_nanos());

    // Glitch tracker.
    let (total, delivered, events, current, longest) = st.glitches.state();
    w.usize(total);
    w.usize(delivered);
    w.usize(events);
    w.usize(current);
    w.usize(longest);

    // SNR-report noise stream and rate adapter.
    encode_rng(w, st.report_rng.state());
    let (current_mcs, up_streak) = st.adapter.state();
    match current_mcs {
        None => w.bool(false),
        Some(i) => {
            w.bool(true);
            w.usize(i);
        }
    }
    w.usize(up_streak);

    // Metrics registry, via its deterministic (name-sorted) snapshot.
    let m = st.metrics.snapshot();
    w.usize(m.counters.len());
    for (name, v) in &m.counters {
        w.str(name);
        w.u64(*v);
    }
    w.usize(m.gauges.len());
    for (name, v) in &m.gauges {
        w.str(name);
        w.f64(*v);
    }
    w.usize(m.histograms.len());
    for (name, h) in &m.histograms {
        w.str(name);
        w.usize(h.edges().len());
        for e in h.edges() {
            w.f64(*e);
        }
        w.usize(h.bucket_counts().len());
        for c in h.bucket_counts() {
            w.u64(*c);
        }
        w.u64(h.count());
        let (n, mean, m2, min, max) = h.summary().welford_state();
        w.usize(n);
        w.f64(mean);
        w.f64(m2);
        w.f64(min);
        w.f64(max);
    }

    // Deployment state.
    let cp = st.system.checkpoint();
    w.f64(cp.ap_steering_deg);
    encode_mode(w, cp.mode);
    w.usize(cp.reflectors.len());
    for r in &cp.reflectors {
        w.f64(r.rx_steering_deg);
        w.f64(r.tx_steering_deg);
        w.f64(r.gain_db);
        w.bool(r.amp_enabled);
        w.bool(r.modulating);
        encode_rng(w, r.sensor_rng);
        w.f64(r.last_tx_deg);
        w.f64(r.commanded_tx);
    }
    let (tracker_rng, last_update_s, last_pose) = cp.tracker;
    encode_rng(w, tracker_rng);
    w.f64(last_update_s);
    match last_pose {
        None => w.bool(false),
        Some(p) => {
            w.bool(true);
            encode_pose(w, p);
        }
    }
    w.usize(cp.predictor_history.len());
    for (t, p) in &cp.predictor_history {
        w.f64(*t);
        encode_pose(w, *p);
    }
    encode_rng(w, cp.fault_rng);
    w.u64(cp.scene_generation);
    w.usize(cp.obstacles.len());
    for o in &cp.obstacles {
        w.u8(body_part_tag(o.kind));
        w.f64(o.center.x);
        w.f64(o.center.y);
    }
}

// --- body decoding ---------------------------------------------------------

fn decode_rng(r: &mut WireReader) -> Result<[u64; 4], SnapshotError> {
    Ok([r.u64()?, r.u64()?, r.u64()?, r.u64()?])
}

fn decode_mode(r: &mut WireReader) -> Result<LinkMode, SnapshotError> {
    match r.u8()? {
        1 => Ok(LinkMode::Direct),
        2 => Ok(LinkMode::Reflector(r.usize()?)),
        tag => Err(malformed(format!("unknown link-mode tag {tag}"))),
    }
}

fn decode_pose(r: &mut WireReader) -> Result<TrackedPose, SnapshotError> {
    Ok(TrackedPose {
        center: movr_math::Vec2::new(r.f64()?, r.f64()?),
        yaw_deg: r.f64()?,
    })
}

fn decode_body_part(tag: u8) -> Result<BodyPart, SnapshotError> {
    match tag {
        0 => Ok(BodyPart::Hand),
        1 => Ok(BodyPart::Head),
        2 => Ok(BodyPart::Torso),
        3 => Ok(BodyPart::Furniture),
        4 => Ok(BodyPart::MetalFurniture),
        _ => Err(malformed(format!("unknown body-part tag {tag}"))),
    }
}

/// Interns a decoded metric name against the static vocabulary — the
/// registry keys on `&'static str`, and an unknown name in a
/// checksum-valid snapshot means a vocabulary drift, not a new metric.
fn intern_metric(name: &str) -> Result<&'static str, SnapshotError> {
    METRIC_NAMES
        .iter()
        .find(|&&n| n == name)
        .copied()
        .ok_or_else(|| malformed(format!("unknown metric name {name:?}")))
}

fn decode_state(
    r: &mut WireReader,
    mut system: MovrSystem,
    config: &SessionConfig,
) -> Result<SessionState, SnapshotError> {
    // Clock and pending events.
    let now = SimTime::from_nanos(r.u64()?);
    let n_pending = r.usize()?;
    let mut pending = Vec::new();
    for _ in 0..n_pending {
        let at = SimTime::from_nanos(r.u64()?);
        match r.u8()? {
            0 => pending.push((at, SessionEvent::Frame)),
            tag => return Err(malformed(format!("unknown session-event tag {tag}"))),
        }
    }
    let queue = EventQueue::restore(now, pending).map_err(|e| malformed(e.to_string()))?;

    // Accumulators.
    let frames = r.usize()?;
    let mode_switches = r.usize()?;
    let realignments = r.usize()?;
    let reflector_frames = r.usize()?;
    let snr_sum = r.f64()?;
    let snr_min = r.f64()?;
    let last_mode = match r.u8()? {
        0 => None,
        1 => Some(LinkMode::Direct),
        2 => Some(LinkMode::Reflector(r.usize()?)),
        tag => return Err(malformed(format!("unknown link-mode tag {tag}"))),
    };
    let blocked_until = SimTime::from_nanos(r.u64()?);

    // Glitch tracker.
    let glitches = GlitchTracker::from_state((
        r.usize()?,
        r.usize()?,
        r.usize()?,
        r.usize()?,
        r.usize()?,
    ));

    // Report RNG and rate adapter.
    let report_rng = SimRng::from_state(decode_rng(r)?);
    let current_mcs = if r.bool()? { Some(r.usize()?) } else { None };
    let up_streak = r.usize()?;
    let mut adapter = AdapterImpl::new(config.rate_policy);
    adapter
        .restore_state(current_mcs, up_streak)
        .map_err(|e| malformed(e.to_string()))?;

    // Metrics.
    let mut metrics = MetricsRegistry::new();
    let n_counters = r.usize()?;
    for _ in 0..n_counters {
        let name = intern_metric(r.str()?)?;
        metrics.set_counter(name, r.u64()?);
    }
    let n_gauges = r.usize()?;
    for _ in 0..n_gauges {
        let name = intern_metric(r.str()?)?;
        metrics.set_gauge(name, r.f64()?);
    }
    let n_hists = r.usize()?;
    for _ in 0..n_hists {
        let name = intern_metric(r.str()?)?;
        let n_edges = r.usize()?;
        let mut edges = Vec::new();
        for _ in 0..n_edges {
            edges.push(r.f64()?);
        }
        let n_counts = r.usize()?;
        let mut counts = Vec::new();
        for _ in 0..n_counts {
            counts.push(r.u64()?);
        }
        let total = r.u64()?;
        let summary = Summary::from_welford_state((
            r.usize()?,
            r.f64()?,
            r.f64()?,
            r.f64()?,
            r.f64()?,
        ));
        let h = Histogram::from_parts(edges, counts, total, summary)
            .map_err(|e| malformed(e.to_string()))?;
        metrics.insert_histogram(name, h);
    }

    // Deployment state.
    let ap_steering_deg = r.f64()?;
    let mode = decode_mode(r)?;
    let n_reflectors = r.usize()?;
    let mut reflectors = Vec::new();
    for _ in 0..n_reflectors {
        reflectors.push(ReflectorCheckpoint {
            rx_steering_deg: r.f64()?,
            tx_steering_deg: r.f64()?,
            gain_db: r.f64()?,
            amp_enabled: r.bool()?,
            modulating: r.bool()?,
            sensor_rng: decode_rng(r)?,
            last_tx_deg: r.f64()?,
            commanded_tx: r.f64()?,
        });
    }
    let tracker_rng = decode_rng(r)?;
    let last_update_s = r.f64()?;
    let last_pose = if r.bool()? {
        Some(decode_pose(r)?)
    } else {
        None
    };
    let n_history = r.usize()?;
    let mut predictor_history = Vec::new();
    for _ in 0..n_history {
        let t = r.f64()?;
        predictor_history.push((t, decode_pose(r)?));
    }
    let fault_rng = decode_rng(r)?;
    let scene_generation = r.u64()?;
    let n_obstacles = r.usize()?;
    let mut obstacles = Vec::new();
    for _ in 0..n_obstacles {
        let kind = decode_body_part(r.u8()?)?;
        let center = movr_math::Vec2::new(r.f64()?, r.f64()?);
        obstacles.push(Obstacle::new(kind, center));
    }
    system
        .restore_checkpoint(SystemCheckpoint {
            ap_steering_deg,
            mode,
            reflectors,
            tracker: (tracker_rng, last_update_s, last_pose),
            predictor_history,
            fault_rng,
            obstacles,
            scene_generation,
        })
        .map_err(|what| SnapshotError::SystemMismatch { what })?;

    Ok(SessionState {
        system,
        adapter,
        report_rng,
        glitches,
        snr_sum,
        snr_min,
        frames,
        mode_switches,
        realignments,
        reflector_frames,
        last_mode,
        blocked_until,
        metrics,
        queue,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Strategy;
    use movr_math::Vec2;
    use movr_motion::{HandRaise, PlayerState};

    fn trace() -> HandRaise {
        let center = Vec2::new(4.0, 2.5);
        let yaw = center.bearing_deg_to(Vec2::new(0.5, 2.5));
        HandRaise {
            base: PlayerState::standing(center, yaw),
            raise_at_s: 0.4,
            lower_at_s: 0.9,
            duration_s: 1.4,
        }
    }

    fn config() -> SessionConfig {
        let mut cfg = SessionConfig::with_strategy(Strategy::Movr { tracking: true });
        cfg.rate_policy = RatePolicy::Threshold { backoff_db: 1.0 };
        cfg
    }

    #[test]
    fn capture_restore_resume_is_bit_identical() {
        let cfg = config();
        let tr = trace();
        let mut full = Session::new(&cfg);
        let mut cut = Session::new(&cfg);
        for _ in 0..40 {
            assert!(full.step_frame(&tr));
            assert!(cut.step_frame(&tr));
        }
        let bytes = Snapshot::capture(&cut);
        drop(cut);
        let mut resumed = Snapshot::restore(&bytes, &cfg).expect("restore");
        assert_eq!(resumed.frames(), 40);
        while full.step_frame(&tr) {
            assert!(resumed.step_frame(&tr));
        }
        assert!(!resumed.step_frame(&tr));
        let a = full.outcome(tr.duration_s);
        let b = resumed.outcome(tr.duration_s);
        assert_eq!(a.glitches, b.glitches);
        assert_eq!(a.mean_snr_db.to_bits(), b.mean_snr_db.to_bits());
        assert_eq!(a.min_snr_db.to_bits(), b.min_snr_db.to_bits());
        assert_eq!(a.metrics.to_json(), b.metrics.to_json());
    }

    #[test]
    fn capture_is_deterministic_and_stable() {
        let cfg = config();
        let tr = trace();
        let mut s = Session::new(&cfg);
        for _ in 0..10 {
            s.step_frame(&tr);
        }
        let a = Snapshot::capture(&s);
        let b = Snapshot::capture(&s);
        assert_eq!(a, b, "capture must not perturb or depend on ambient state");
        // Capturing is non-destructive: the session still steps.
        assert!(s.step_frame(&tr));
    }

    #[test]
    fn fresh_session_round_trips() {
        // Zero frames processed: all sentinels (snr_min = +inf, NaN beam
        // bearings, empty histograms) survive the trip.
        let cfg = config();
        let s = Session::new(&cfg);
        let bytes = Snapshot::capture(&s);
        let restored = Snapshot::restore(&bytes, &cfg).expect("restore fresh");
        assert_eq!(restored.frames(), 0);
        assert_eq!(Snapshot::capture(&restored), bytes);
    }

    #[test]
    fn wrong_version_error_names_the_format_version() {
        let cfg = config();
        let s = Session::new(&cfg);
        let mut bytes = Snapshot::capture(&s);
        bytes[8] = 99; // version u32 LE low byte
        let err = match Snapshot::restore(&bytes, &cfg) {
            Ok(_) => panic!("a foreign format version must be rejected"),
            Err(e) => e,
        };
        assert_eq!(err, SnapshotError::UnsupportedVersion { found: 99 });
        let msg = err.to_string();
        assert!(msg.contains("version 99"), "{msg}");
        assert!(msg.contains("format version 1"), "{msg}");
    }

    #[test]
    fn config_fingerprint_is_sensitive_to_every_knob() {
        let base = config();
        let fp = config_fingerprint(&base);
        let mut c1 = base;
        c1.snr_report_sigma_db += 0.1;
        let mut c2 = base;
        c2.system.seed ^= 1;
        let mut c3 = base;
        c3.rate_policy = RatePolicy::Oracle;
        let mut c4 = base;
        c4.latency.budget = c4.latency.budget + SimTime::from_nanos(1);
        for (i, c) in [c1, c2, c3, c4].iter().enumerate() {
            assert_ne!(fp, config_fingerprint(c), "knob {i} must change the fingerprint");
        }
        assert_eq!(fp, config_fingerprint(&base));
    }

    #[test]
    fn restore_under_different_config_is_rejected() {
        let cfg = config();
        let mut s = Session::new(&cfg);
        let tr = trace();
        for _ in 0..5 {
            s.step_frame(&tr);
        }
        let bytes = Snapshot::capture(&s);
        let mut other = cfg;
        other.system.seed ^= 0xDEAD;
        match Snapshot::restore(&bytes, &other) {
            Err(SnapshotError::ConfigMismatch { expected, found }) => {
                assert_ne!(expected, found);
            }
            Err(e) => panic!("expected ConfigMismatch, got {e:?}"),
            Ok(_) => panic!("expected ConfigMismatch, got a session"),
        }
    }
}
