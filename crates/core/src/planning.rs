//! Multi-reflector deployment planning.
//!
//! "One or more MoVR reflectors can be installed in a room by sticking
//! them to the walls" (§4) — but *where*? A reflector only helps poses
//! from which (a) its own arrays can see both the AP and the player, and
//! (b) the player's receiver can see it. This module turns that into a
//! planning tool: enumerate candidate wall mounts, score deployments by
//! the fraction of sample poses served at VR grade, and greedily pick
//! mounts until the coverage target (or budget) is met.

use crate::reflector::MovrReflector;
use crate::system::{MovrSystem, SystemConfig};
use movr_math::{SimRng, Vec2};
use movr_motion::{PlayerState, WorldState};
use movr_radio::{RadioEndpoint, RateTable};
use movr_rfsim::{Room, Scene};

/// A candidate wall mount.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mount {
    /// Mount position on a wall, metres.
    pub position: Vec2,
    /// Array boresight bearing (into the room), degrees.
    pub boresight_deg: f64,
}

/// Enumerates candidate mounts along all four walls at roughly
/// `spacing_m` intervals, each oriented toward the room centre (the
/// natural installation that keeps both the AP side and the play area in
/// scan for a centre-facing panel).
pub fn candidate_wall_mounts(room: &Room, spacing_m: f64) -> Vec<Mount> {
    assert!(spacing_m > 0.0, "spacing must be positive");
    let centre = Vec2::new(room.width() / 2.0, room.depth() / 2.0);
    let inset = 0.25;
    let mut mounts = Vec::new();
    let mut push = |pos: Vec2| {
        mounts.push(Mount {
            position: pos,
            boresight_deg: pos.bearing_deg_to(centre),
        });
    };
    let mut x = spacing_m;
    while x < room.width() - spacing_m / 2.0 {
        push(Vec2::new(x, inset)); // south wall
        push(Vec2::new(x, room.depth() - inset)); // north wall
        x += spacing_m;
    }
    let mut y = spacing_m;
    while y < room.depth() - spacing_m / 2.0 {
        push(Vec2::new(inset, y)); // west wall
        push(Vec2::new(room.width() - inset, y)); // east wall
        y += spacing_m;
    }
    mounts
}

/// Sample poses over the play area: positions on a grid, several gaze
/// headings each (uniform over the circle — players look everywhere).
pub fn sample_poses(room: &Room, grid_step_m: f64, headings: usize, rng: &mut SimRng) -> Vec<PlayerState> {
    assert!(headings >= 1);
    let margin = 0.8;
    let mut poses = Vec::new();
    let mut x = margin;
    while x <= room.width() - margin {
        let mut y = margin;
        while y <= room.depth() - margin {
            for h in 0..headings {
                let yaw = -180.0 + 360.0 * h as f64 / headings as f64 + rng.uniform(-5.0, 5.0);
                poses.push(PlayerState::standing(Vec2::new(x, y), yaw));
            }
            y += grid_step_m;
        }
        x += grid_step_m;
    }
    poses
}

/// Builds a system with the AP plus the given mounts installed.
fn build_system(ap: &RadioEndpoint, mounts: &[Mount], config: SystemConfig) -> MovrSystem {
    let mut sys = MovrSystem::new(Scene::paper_office(), *ap, config);
    for (k, m) in mounts.iter().enumerate() {
        sys.add_reflector(MovrReflector::wall_mounted(
            m.position,
            m.boresight_deg,
            k as u64 + 1,
        ));
    }
    sys
}

/// Fraction of `poses` served at VR grade by the deployment.
pub fn coverage(ap: &RadioEndpoint, mounts: &[Mount], poses: &[PlayerState]) -> f64 {
    if poses.is_empty() {
        return 0.0;
    }
    let rate = RateTable;
    let mut sys = build_system(ap, mounts, SystemConfig::default());
    let ok = poses
        .iter()
        .enumerate()
        .filter(|(i, p)| {
            // Distinct, well-spaced evaluation instants: the tracker
            // holds its estimate between its update ticks, so evaluating
            // every pose at t = 0 would serve them all the *first*
            // pose's tracked position.
            let d = sys.evaluate_at(*i as f64, &WorldState::player_only(**p));
            rate.supports_vr(d.snr_db)
        })
        .count();
    ok as f64 / poses.len() as f64
}

/// A greedy deployment plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Chosen mounts, in selection order.
    pub mounts: Vec<Mount>,
    /// Coverage after each selection (index 0 = AP alone).
    pub coverage_curve: Vec<f64>,
}

/// Greedily selects up to `k` mounts from `candidates`, each step adding
/// the mount that maximises pose coverage. Stops early when no candidate
/// improves coverage.
pub fn greedy_plan(
    ap: &RadioEndpoint,
    candidates: &[Mount],
    poses: &[PlayerState],
    k: usize,
) -> Plan {
    let mut chosen: Vec<Mount> = Vec::new();
    let mut curve = vec![coverage(ap, &[], poses)];
    let mut remaining: Vec<Mount> = candidates.to_vec();

    for _ in 0..k {
        let mut best: Option<(usize, f64)> = None;
        for (idx, cand) in remaining.iter().enumerate() {
            let mut trial = chosen.clone();
            trial.push(*cand);
            let c = coverage(ap, &trial, poses);
            if best.is_none_or(|(_, b)| c > b) {
                best = Some((idx, c));
            }
        }
        match best {
            Some((idx, c)) if c > *curve.last().expect("non-empty") + 1e-9 => {
                chosen.push(remaining.remove(idx));
                curve.push(c);
            }
            _ => break,
        }
    }
    Plan {
        mounts: chosen,
        coverage_curve: curve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ap() -> RadioEndpoint {
        RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0)
    }

    #[test]
    fn candidates_line_the_walls() {
        let room = Room::paper_office();
        let mounts = candidate_wall_mounts(&room, 1.5);
        assert!(mounts.len() >= 8, "got {}", mounts.len());
        for m in &mounts {
            // On (near) a wall...
            let near_wall = m.position.x < 0.5
                || m.position.x > 4.5
                || m.position.y < 0.5
                || m.position.y > 4.5;
            assert!(near_wall, "{:?}", m.position);
            // ...facing the room.
            let centre_dir = m.position.bearing_deg_to(Vec2::new(2.5, 2.5));
            assert!((m.boresight_deg - centre_dir).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "spacing")]
    fn zero_spacing_rejected() {
        candidate_wall_mounts(&Room::paper_office(), 0.0);
    }

    #[test]
    fn sample_poses_cover_headings() {
        let room = Room::paper_office();
        let mut rng = SimRng::seed_from_u64(1);
        let poses = sample_poses(&room, 2.0, 4, &mut rng);
        assert!(!poses.is_empty());
        // Four headings per grid point.
        assert_eq!(poses.len() % 4, 0);
    }

    #[test]
    fn one_good_mount_beats_none() {
        // Small, fast instance: poses facing a spread of directions; the
        // canonical north-wall mount must add coverage over AP-only.
        let mut rng = SimRng::seed_from_u64(2);
        let poses: Vec<PlayerState> = (0..8)
            .map(|k| {
                PlayerState::standing(
                    Vec2::new(3.5 + rng.uniform(-0.3, 0.3), 2.0 + rng.uniform(-0.3, 0.3)),
                    -180.0 + k as f64 * 45.0,
                )
            })
            .collect();
        let base = coverage(&ap(), &[], &poses);
        let with = coverage(
            &ap(),
            &[Mount {
                position: Vec2::new(1.0, 4.75),
                boresight_deg: -70.0,
            }],
            &poses,
        );
        assert!(with > base, "with={with} base={base}");
    }

    #[test]
    fn greedy_curve_is_monotone() {
        let room = Room::paper_office();
        let mut rng = SimRng::seed_from_u64(3);
        // Tiny instance to keep the test quick.
        let poses = sample_poses(&room, 2.4, 3, &mut rng);
        let candidates = candidate_wall_mounts(&room, 2.4);
        let plan = greedy_plan(&ap(), &candidates, &poses, 2);
        assert!(!plan.coverage_curve.is_empty());
        for w in plan.coverage_curve.windows(2) {
            assert!(w[1] > w[0], "greedy step must improve coverage");
        }
        assert_eq!(plan.mounts.len() + 1, plan.coverage_curve.len());
    }
}
