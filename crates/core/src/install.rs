//! The installation procedure, end to end.
//!
//! What actually happens when you stick a MoVR reflector to the wall
//! (§4.1: "the angle of incidence is measured once at installation"):
//!
//! 1. The AP pairs with the reflector over Bluetooth and commands it to
//!    start modulating (reliable stop-and-wait commands — the install
//!    runs over the real lossy control link).
//! 2. The backscatter sweep estimates the incidence angle; every
//!    reflector beam change is a control command with latency, loss and
//!    retries.
//! 3. The reflector's receive beam is parked on the estimated angle and
//!    the §4.2 gain-control loop finds the safe gain for a default
//!    transmit posture.
//! 4. The AP records the calibration; the link manager takes over.
//!
//! [`install_reflector`] returns both the calibration and an audit of
//! what it cost (wall-clock, command counts, retries) — the numbers an
//! installer cares about.

use crate::alignment::{estimate_incidence, AlignmentConfig, AlignmentResult};
use crate::gain_control::{run_gain_control, GainControlConfig, GainControlResult};
use crate::reflector::MovrReflector;
use movr_control::{CommandSession, ControlMessage, SessionStatus};
use movr_math::SimRng;
use movr_radio::RadioEndpoint;
use movr_rfsim::Scene;
use movr_sim::SimTime;

/// The outcome of installing one reflector.
#[derive(Debug, Clone)]
pub struct InstallReport {
    /// The §4.1 estimate (incidence + AP bearing + sweep audit).
    pub alignment: AlignmentResult,
    /// The §4.2 result at the parked posture.
    pub gain: GainControlResult,
    /// Wall-clock from pairing to ready.
    pub elapsed: SimTime,
    /// Control commands submitted (including the sweep's beam commands).
    pub commands: usize,
    /// Retransmissions the lossy link forced.
    pub retries: usize,
    /// True if every command was eventually acknowledged.
    pub converged: bool,
}

/// Installation knobs.
#[derive(Debug, Clone)]
pub struct InstallConfig {
    /// Alignment-sweep knobs (§4.1).
    pub alignment: AlignmentConfig,
    /// Gain-control knobs (§4.2).
    pub gain_control: GainControlConfig,
    /// Retries per control command before declaring the install failed.
    pub max_retries: u32,
}

impl Default for InstallConfig {
    fn default() -> Self {
        InstallConfig {
            alignment: AlignmentConfig::default(),
            gain_control: GainControlConfig::default(),
            max_retries: 5,
        }
    }
}

/// Sends one command through the session, driving it to resolution.
/// Returns the resolution time, or `None` if the command failed.
fn command(
    session: &mut CommandSession,
    now: SimTime,
    msg: ControlMessage,
) -> Option<SimTime> {
    assert!(session.submit(now, msg), "stop-and-wait misuse");
    let step = SimTime::from_millis(1);
    let deadline = now + SimTime::from_secs_f64(5.0);
    match session.drive_until_resolved(now, step, deadline) {
        (SessionStatus::Acked(at), _) => Some(at),
        _ => None,
    }
}

/// Runs the full installation of `reflector` against `ap` in `scene`,
/// over the control session `link`. On success the reflector is left
/// parked: receive beam on the estimated incidence angle, amplifier at
/// the safe gain.
pub fn install_reflector(
    scene: &Scene,
    ap: &RadioEndpoint,
    reflector: &mut MovrReflector,
    link: &mut CommandSession,
    config: &InstallConfig,
    rng: &mut SimRng,
) -> InstallReport {
    let mut now = SimTime::ZERO;
    let mut converged = true;

    // 1. Start modulation for the backscatter sweep.
    match command(link, now, ControlMessage::StartModulation { freq_hz: 100e3 }) {
        Some(at) => now = at,
        None => converged = false,
    }
    reflector.set_modulating(true);

    // 2. The sweep itself. `estimate_incidence` models the AP-side
    //    measurement; its beam commands ride the same control link, so
    //    the wall-clock is the sweep's own accounting plus the per-beam
    //    command traffic actually measured on the session.
    let alignment = estimate_incidence(scene, *ap, reflector.clone(), &config.alignment, rng);
    for &theta1 in config.alignment.reflector_codebook.beams() {
        match command(
            link,
            now,
            ControlMessage::SetReflectorBeams {
                rx_deg: theta1,
                tx_deg: theta1,
            },
        ) {
            Some(at) => now = at,
            None => {
                converged = false;
                now += SimTime::from_millis(50);
            }
        }
    }

    // 3. Stop modulating, park the beams on the estimate, run gain
    //    control.
    if let Some(at) = command(link, now, ControlMessage::StopModulation) {
        now = at;
    } else {
        converged = false;
    }
    reflector.set_modulating(false);
    match command(
        link,
        now,
        ControlMessage::SetReflectorBeams {
            rx_deg: alignment.reflector_angle_deg,
            tx_deg: alignment.reflector_angle_deg,
        },
    ) {
        Some(at) => now = at,
        None => converged = false,
    }
    reflector.steer_rx(alignment.reflector_angle_deg);
    reflector.steer_tx(alignment.reflector_angle_deg);

    if let Some(at) = command(link, now, ControlMessage::RunGainControl) {
        now = at;
    } else {
        converged = false;
    }
    let gain = run_gain_control(reflector, &config.gain_control);
    // The gain loop runs on the Arduino: ~30 µs of ADC work per step.
    now += SimTime::from_nanos(movr_math::convert::usize_to_u64(gain.trace.len()) * 30_000);
    if let Some(at) = command(
        link,
        now,
        ControlMessage::GainControlDone {
            gain_db: gain.chosen_gain_db,
        },
    ) {
        now = at;
    } else {
        converged = false;
    }

    let stats = link.stats();
    InstallReport {
        alignment,
        gain,
        elapsed: now,
        commands: stats.submitted,
        retries: stats.retries,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use movr_control::ControlChannel;
    use movr_math::{wrap_deg_180, Vec2};
    use movr_phased_array::Codebook;

    fn setup() -> (Scene, RadioEndpoint, MovrReflector, InstallConfig) {
        let scene = Scene::paper_office();
        let ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0);
        let reflector = MovrReflector::wall_mounted(Vec2::new(1.0, 4.75), -70.0, 6);
        let truth = reflector.position().bearing_deg_to(ap.position());
        let truth_ap = ap.position().bearing_deg_to(reflector.position());
        let config = InstallConfig {
            alignment: AlignmentConfig {
                ap_codebook: Codebook::sweep(truth_ap - 8.0, truth_ap + 8.0, 1.0),
                reflector_codebook: Codebook::sweep(truth - 8.0, truth + 8.0, 1.0),
                ..Default::default()
            },
            ..Default::default()
        };
        (scene, ap, reflector, config)
    }

    #[test]
    fn install_over_clean_link_converges() {
        let (scene, ap, mut reflector, config) = setup();
        let mut link = CommandSession::new(ControlChannel::ideal(), ControlChannel::ideal(), 3);
        let mut rng = SimRng::seed_from_u64(1);
        let truth = reflector.position().bearing_deg_to(ap.position());

        let report = install_reflector(&scene, &ap, &mut reflector, &mut link, &config, &mut rng);
        assert!(report.converged);
        assert_eq!(report.retries, 0);
        assert!(
            wrap_deg_180(report.alignment.reflector_angle_deg - truth).abs() <= 2.0,
            "install estimate {} vs truth {truth}",
            report.alignment.reflector_angle_deg
        );
        // Device left parked and stable.
        assert!(!reflector.is_saturated());
        assert!(
            wrap_deg_180(reflector.rx_array().steering_deg() - report.alignment.reflector_angle_deg)
                .abs()
                < 1e-9
        );
        // 17 beam commands + 5 housekeeping commands.
        assert_eq!(report.commands, 17 + 5);
    }

    #[test]
    fn install_over_bluetooth_still_converges_and_costs_time() {
        let (scene, ap, mut reflector, config) = setup();
        let mut link = CommandSession::bluetooth(42, 5);
        let mut rng = SimRng::seed_from_u64(2);

        let report = install_reflector(&scene, &ap, &mut reflector, &mut link, &config, &mut rng);
        assert!(report.converged, "1% loss with 5 retries must converge");
        // ~22 commands × a BLE round trip (~17-20 ms) ≥ 350 ms.
        assert!(
            report.elapsed > SimTime::from_millis(300),
            "elapsed {}",
            report.elapsed
        );
        assert!(report.elapsed < SimTime::from_secs_f64(5.0));
    }

    #[test]
    fn lossy_link_forces_retries_but_install_survives() {
        let (scene, ap, mut reflector, config) = setup();
        let mut forward = ControlChannel::bluetooth(9);
        forward.loss_probability = 0.30;
        let mut link = CommandSession::new(forward, ControlChannel::bluetooth(10), 8);
        let mut rng = SimRng::seed_from_u64(3);

        let report = install_reflector(&scene, &ap, &mut reflector, &mut link, &config, &mut rng);
        assert!(report.retries > 0, "30% loss must force retransmissions");
        assert!(report.converged);
        assert!(!reflector.is_saturated());
    }
}
