//! The MoVR link manager.
//!
//! Ties the pieces into the system of Fig. 5: a mmWave AP beside the PC,
//! one or more wall-mounted reflectors, and the headset. Per evaluation
//! instant the manager:
//!
//! 1. updates the propagation scene from the player's pose (her own head
//!    and hand are obstacles, plus any bystanders),
//! 2. evaluates the direct AP→headset link and each reflector path
//!    (receive beam on the calibrated AP bearing, transmit beam at the
//!    headset, gain set by the §4.2 loop),
//! 3. serves the direct path while it is VR-grade, otherwise fails over
//!    to the best reflector (§4: "in the case of a blockage ... the AP
//!    steers its beam towards the MoVR reflector"),
//! 4. accounts the realignment *cost*: with §6 tracking assistance the
//!    reflector's transmit beam follows the tracked headset continuously;
//!    without it, a blockage triggers a windowed beam re-sweep whose
//!    latency stalls frames.

use crate::gain_control::{run_gain_control, run_gain_control_recorded, GainControlConfig};
use crate::reflector::MovrReflector;
use crate::relay::{relay_link, relay_link_on, RelayBudget};
use movr_math::{wrap_deg_180, Vec2};
use movr_motion::{LighthouseTracker, WorldState};
use movr_obs::{NullRecorder, Recorder};
use movr_radio::{evaluate_link, RadioEndpoint, RateTable};
use movr_rfsim::Scene;
use movr_sim::SimTime;

/// Device seed of the canonical `paper_setup` reflector unit.
///
/// `MovrReflector::wall_mounted`'s seed individualises the manufactured
/// unit (leakage surface, sensor noise). The paper evaluated one physical
/// prototype; this seed selects the simulated unit that stands in for it,
/// chosen so the reflector path at the canonical posture behaves like the
/// measured device (within a few dB of the unblocked LOS, Fig. 9). Seeds
/// are unit serial numbers, not randomness knobs: changing the in-tree
/// RNG re-rolls the whole batch, and this constant is where the canonical
/// unit gets re-picked (see `tests/end_to_end.rs`).
pub const PAPER_DEVICE_SEED: u64 = 2;

/// Which path carries the data stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkMode {
    /// AP beams straight at the headset.
    Direct,
    /// AP beams at reflector `i`, which relays to the headset.
    Reflector(usize),
}

/// The manager's verdict for one instant.
#[derive(Debug, Clone, Copy)]
pub struct LinkDecision {
    /// The path chosen.
    pub mode: LinkMode,
    /// Delivered SNR, dB.
    pub snr_db: f64,
    /// 802.11ad rate at that SNR, Mb/s.
    pub rate_mbps: f64,
    /// True if the rate sustains the VR stream.
    pub supports_vr: bool,
    /// True if beams had to be re-aimed this instant.
    pub realigned: bool,
    /// Wall-clock cost of that re-aiming (zero when `realigned == false`).
    pub realignment_cost: SimTime,
}

/// System-level knobs.
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// Serve the direct path while its SNR is at least this, dB.
    pub snr_switch_threshold_db: f64,
    /// §6 tracking-assisted realignment (true) vs sweep-on-degradation
    /// (false).
    pub use_tracking: bool,
    /// Predictive beam tracking (§6 future work): aim each transmit-beam
    /// command at where the tracked pose will be when the command takes
    /// effect, instead of where it was when the command was issued.
    /// Only meaningful with `use_tracking`.
    pub use_prediction: bool,
    /// Gain-control parameters.
    pub gain_control: GainControlConfig,
    /// Half-width of the no-tracking re-sweep window, degrees.
    pub realign_window_deg: f64,
    /// Control-channel latency per reflector beam command.
    pub beam_command_latency: SimTime,
    /// AP/headset measurement dwell per sweep step.
    pub sweep_dwell: SimTime,
    /// Fault injection: probability that a reflector beam command is
    /// lost in the control plane (the beam then holds its previous
    /// angle until the next command gets through).
    pub command_loss_probability: f64,
    /// RNG seed for the tracker and fault injection.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            snr_switch_threshold_db: movr_radio::VR_REQUIRED_SNR_DB + 2.0,
            use_tracking: true,
            use_prediction: false,
            gain_control: GainControlConfig::default(),
            realign_window_deg: 15.0,
            beam_command_latency: SimTime::from_micros(7_500),
            sweep_dwell: SimTime::from_micros(50),
            command_loss_probability: 0.0,
            seed: 0,
        }
    }
}

/// The full MoVR deployment.
#[derive(Debug, Clone)]
pub struct MovrSystem {
    scene: Scene,
    ap: RadioEndpoint,
    reflectors: Vec<MovrReflector>,
    /// Calibrated incidence bearing (reflector → AP) per reflector.
    incidence_deg: Vec<f64>,
    /// Calibrated AP bearing (AP → reflector) per reflector.
    ap_to_reflector_deg: Vec<f64>,
    /// Last served reflector transmit bearing (for no-tracking staleness).
    last_tx_deg: Vec<f64>,
    /// Transmit-beam command issued at the previous evaluation, per
    /// reflector: it takes effect one control latency later, i.e. "now".
    commanded_tx: Vec<f64>,
    tracker: LighthouseTracker,
    predictor: crate::tracking::BeamPredictor,
    fault_rng: movr_math::SimRng,
    rate_table: RateTable,
    mode: LinkMode,
    config: SystemConfig,
}

impl MovrSystem {
    /// An empty deployment: AP only, no reflectors yet.
    pub fn new(scene: Scene, ap: RadioEndpoint, config: SystemConfig) -> Self {
        MovrSystem {
            scene,
            ap,
            reflectors: Vec::new(),
            incidence_deg: Vec::new(),
            ap_to_reflector_deg: Vec::new(),
            last_tx_deg: Vec::new(),
            commanded_tx: Vec::new(),
            tracker: LighthouseTracker::new(config.seed),
            predictor: crate::tracking::BeamPredictor::new(),
            fault_rng: movr_math::SimRng::seed_from_u64(config.seed ^ 0xFA_517),
            rate_table: RateTable,
            mode: LinkMode::Direct,
            config,
        }
    }

    /// The canonical single-reflector layout: 5 m × 5 m office, AP on the
    /// west wall, reflector high on the north wall. The short AP–reflector
    /// hop matches the paper's §5.2 observation that "the AP distance to
    /// the MoVR reflector is shorter than its distance to the headset's
    /// receiver", and the reflector sits at a moderate angular offset from
    /// the AP as seen from the play area, so a player facing the AP keeps
    /// the reflector inside her receiver's electronic scan range.
    pub fn paper_setup(config: SystemConfig) -> Self {
        let scene = Scene::paper_office();
        let ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0);
        let mut sys = MovrSystem::new(scene, ap, config);
        sys.add_reflector(MovrReflector::wall_mounted(
            Vec2::new(1.0, 4.75),
            -70.0,
            PAPER_DEVICE_SEED,
        ));
        sys
    }

    /// Installs a reflector and calibrates its incidence angle.
    ///
    /// Calibration here uses the installed geometry (positions are known
    /// at mounting time); the §4.1 *protocol* that discovers the same
    /// angle without that knowledge is implemented in
    /// [`crate::alignment::estimate_incidence`] and validated against
    /// ground truth in the Fig. 8 benchmark.
    pub fn add_reflector(&mut self, reflector: MovrReflector) -> usize {
        let incidence = reflector.position().bearing_deg_to(self.ap.position());
        let ap_bearing = self.ap.position().bearing_deg_to(reflector.position());
        self.reflectors.push(reflector);
        self.incidence_deg.push(incidence);
        self.ap_to_reflector_deg.push(ap_bearing);
        self.last_tx_deg.push(f64::NAN);
        self.commanded_tx.push(f64::NAN);
        let i = self.reflectors.len() - 1;
        self.reflectors[i].steer_rx(incidence); // lint: i = len - 1 of the vec pushed two lines up
        i
    }

    /// The scene (read access — benches inspect obstacles).
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// The AP endpoint.
    pub fn ap(&self) -> &RadioEndpoint {
        &self.ap
    }

    /// Installed reflectors.
    pub fn reflectors(&self) -> &[MovrReflector] {
        &self.reflectors
    }

    /// The current serving mode.
    pub fn mode(&self) -> LinkMode {
        self.mode
    }

    /// Builds the headset endpoint for the player's current pose.
    fn headset_for(&self, world: &WorldState) -> RadioEndpoint {
        RadioEndpoint::paper_radio(
            world.player.receiver_position(),
            world.player.receiver_boresight_deg(),
        )
    }

    /// Loads the player/world obstacles into the scene.
    fn sync_scene(&mut self, world: &WorldState) {
        self.scene.set_obstacles(world.all_obstacles());
    }

    /// SNR of the direct path with both ends aimed at each other, under
    /// the world's obstacles. Does not change persistent state.
    pub fn evaluate_direct(&mut self, world: &WorldState) -> f64 {
        self.sync_scene(world);
        let mut ap = self.ap;
        let mut hs = self.headset_for(world);
        ap.steer_toward(hs.position());
        hs.steer_toward(ap.position());
        evaluate_link(&self.scene, &ap, &hs).snr_db
    }

    /// The relayed budget via reflector `i` with ideal (oracle) transmit
    /// aiming at the true receiver position — the best MoVR can do.
    /// Runs gain control for the chosen beams.
    pub fn evaluate_via_reflector(&mut self, i: usize, world: &WorldState) -> RelayBudget {
        self.sync_scene(world);
        let mut ap = self.ap;
        let mut hs = self.headset_for(world);
        ap.steer_to(self.ap_to_reflector_deg[i]);
        hs.steer_toward(self.reflectors[i].position());

        let tx_deg = self.reflectors[i]
            .position()
            .bearing_deg_to(hs.position());
        self.reflectors[i].steer_rx(self.incidence_deg[i]);
        self.reflectors[i].steer_tx(tx_deg);
        run_gain_control(&mut self.reflectors[i], &self.config.gain_control);
        relay_link(&self.scene, &ap, &self.reflectors[i], &hs)
    }

    /// The cost of a no-tracking windowed re-sweep of one reflector's
    /// transmit beam against the headset's receive beam.
    pub fn sweep_realignment_cost(&self) -> SimTime {
        let n = movr_math::convert::f64_to_u64(2.0 * self.config.realign_window_deg + 1.0);
        SimTime::from_nanos(
            n * self.config.beam_command_latency.as_nanos()
                + n * n * self.config.sweep_dwell.as_nanos(),
        )
    }

    /// The cost of a tracking-assisted realignment: one beam command.
    pub fn tracking_realignment_cost(&self) -> SimTime {
        self.config.beam_command_latency
    }

    /// Evaluates the link at time `t_s` for the given world and commits
    /// the decision (beams, mode) as persistent state.
    pub fn evaluate_at(&mut self, t_s: f64, world: &WorldState) -> LinkDecision {
        self.evaluate_at_recorded(t_s, world, &mut NullRecorder)
    }

    /// [`MovrSystem::evaluate_at`] with observability: every §4.2 gain
    /// ramp the evaluation triggers (one per reflector candidate, plus
    /// the re-run after a degraded-beam re-sweep) is recorded as a
    /// `gain_ramp` span with its `gain_step`/`gain_backoff`/`gain_ceiling`
    /// events, stamped at the evaluation instant. The decision is
    /// bit-identical to the plain call.
    pub fn evaluate_at_recorded(
        &mut self,
        t_s: f64,
        world: &WorldState,
        rec: &mut dyn Recorder,
    ) -> LinkDecision {
        let now = SimTime::from_secs_f64(t_s);
        self.sync_scene(world);
        let mut hs = self.headset_for(world);
        let tracked = self.tracker.track(t_s, &world.player);
        self.predictor.observe(t_s, tracked);

        // --- Direct candidate -------------------------------------------------
        let mut ap_direct = self.ap;
        ap_direct.steer_toward(tracked.receiver_position());
        let mut hs_direct = hs;
        hs_direct.steer_toward(ap_direct.position());
        let direct_snr = evaluate_link(&self.scene, &ap_direct, &hs_direct).snr_db;

        if direct_snr >= self.config.snr_switch_threshold_db {
            let realigned = self.mode != LinkMode::Direct;
            self.mode = LinkMode::Direct;
            self.ap = ap_direct;
            return self.decision(direct_snr, realigned, SimTime::ZERO);
        }

        // --- Reflector candidates ---------------------------------------------
        let mut best: Option<(usize, f64, bool, SimTime)> = None;
        for i in 0..self.reflectors.len() {
            let mut ap_r = self.ap;
            ap_r.steer_to(self.ap_to_reflector_deg[i]);
            hs.steer_toward(self.reflectors[i].position());
            self.reflectors[i].steer_rx(self.incidence_deg[i]);

            // Geometry is frozen for this evaluation (the scene was
            // synced above), so trace both relay hops once; the initial
            // budget and any degraded-beam re-run below only reweight.
            let hop1 = self
                .scene
                .trace_link(ap_r.position(), self.reflectors[i].position());
            let hop2 = self
                .scene
                .trace_link(self.reflectors[i].position(), hs.position());

            let ideal_tx = self.reflectors[i]
                .position()
                .bearing_deg_to(tracked.receiver_position());

            let (tx_deg, mut realigned, mut cost) = if self.config.use_tracking {
                // §6: the beam follows the tracked pose continuously. A
                // command takes one control latency to reach the
                // reflector, so the beam in effect *now* is what was
                // commanded at the previous evaluation; the command we
                // issue now aims at the pose — predicted ahead by the
                // command latency when prediction is enabled — and will
                // serve the next instant. Command traffic rides the
                // control plane asynchronously: it does not stall the
                // data stream, so the cost is zero (mode switches and
                // sweeps are the stalls).
                let command = if self.config.use_prediction {
                    let effect_at =
                        t_s + self.config.beam_command_latency.as_secs_f64();
                    self.predictor
                        .predict_bearing_from(self.reflectors[i].position(), effect_at)
                        .unwrap_or(ideal_tx)
                } else {
                    ideal_tx
                };
                let in_effect = if self.commanded_tx[i].is_nan() {
                    command
                } else {
                    self.commanded_tx[i]
                };
                // Fault injection: a lost command leaves the previous
                // angle in force; the beam catches up next evaluation.
                if self.commanded_tx[i].is_nan()
                    || !self.fault_rng.chance(self.config.command_loss_probability)
                {
                    self.commanded_tx[i] = command;
                }
                let moved = self.last_tx_deg[i].is_nan()
                    || wrap_deg_180(in_effect - self.last_tx_deg[i]).abs() > 1.0;
                (in_effect, moved, SimTime::ZERO)
            } else if self.last_tx_deg[i].is_nan() {
                // First use: full windowed sweep to find the headset.
                (ideal_tx, true, self.sweep_realignment_cost())
            } else {
                // Keep the stale beam; a re-sweep happens only if the
                // served SNR degrades (checked below).
                (self.last_tx_deg[i], false, SimTime::ZERO)
            };

            self.reflectors[i].steer_tx(tx_deg);
            run_gain_control_recorded(
                &mut self.reflectors[i],
                &self.config.gain_control,
                now,
                rec,
            );
            let mut budget = relay_link_on(&hop1, &hop2, &ap_r, &self.reflectors[i], hs.array());

            if !self.config.use_tracking
                && budget.end_snr_db < self.config.snr_switch_threshold_db
            {
                // Degraded on the stale beam: pay for a re-sweep, which
                // finds the current best transmit angle.
                self.reflectors[i].steer_tx(ideal_tx);
                run_gain_control_recorded(
                    &mut self.reflectors[i],
                    &self.config.gain_control,
                    now,
                    rec,
                );
                budget = relay_link_on(&hop1, &hop2, &ap_r, &self.reflectors[i], hs.array());
                realigned = true;
                cost = self.sweep_realignment_cost();
            }

            let applied_tx = self.reflectors[i].tx_array().steering_deg();
            self.last_tx_deg[i] = applied_tx;

            if best.is_none_or(|(_, s, _, _)| budget.end_snr_db > s) {
                best = Some((i, budget.end_snr_db, realigned, cost));
            }
        }

        match best {
            Some((i, snr, realigned, cost)) if snr > direct_snr => {
                let switched = self.mode != LinkMode::Reflector(i);
                self.mode = LinkMode::Reflector(i);
                let mut ap_r = self.ap;
                ap_r.steer_to(self.ap_to_reflector_deg[i]);
                self.ap = ap_r;
                // A path switch needs a coordinated AP + reflector
                // command round: the stream stalls for one control
                // latency (on top of any sweep already accounted).
                let cost = if switched {
                    cost.max(self.tracking_realignment_cost())
                } else {
                    cost
                };
                self.decision(snr, realigned || switched, cost)
            }
            _ => {
                // No reflector beats the (degraded) direct path.
                let realigned = self.mode != LinkMode::Direct;
                self.mode = LinkMode::Direct;
                self.ap = ap_direct;
                self.decision(direct_snr, realigned, SimTime::ZERO)
            }
        }
    }

    /// Captures every piece of mutable deployment state for a session
    /// checkpoint. Calibration (incidence/AP bearings), geometry, and
    /// config are construction inputs, not state — a restore target is
    /// expected to have been built identically.
    pub(crate) fn checkpoint(&self) -> SystemCheckpoint {
        SystemCheckpoint {
            ap_steering_deg: self.ap.array().steering_deg(),
            mode: self.mode,
            reflectors: self
                .reflectors
                .iter()
                .enumerate()
                .map(|(i, r)| ReflectorCheckpoint {
                    rx_steering_deg: r.rx_array().steering_deg(),
                    tx_steering_deg: r.tx_array().steering_deg(),
                    gain_db: r.amplifier().gain_db(),
                    amp_enabled: r.amplifier().is_enabled(),
                    modulating: r.is_modulating(),
                    sensor_rng: r.sensor_rng_state(),
                    last_tx_deg: self.last_tx_deg[i],
                    commanded_tx: self.commanded_tx[i],
                })
                .collect(),
            tracker: self.tracker.state(),
            predictor_history: self.predictor.history(),
            fault_rng: self.fault_rng.state(),
            obstacles: self.scene.obstacles().to_vec(),
            scene_generation: self.scene.generation(),
        }
    }

    /// Applies a [`MovrSystem::checkpoint`] capture. The deployment must
    /// match the one that produced it (same reflector count; a
    /// `LinkMode::Reflector` index must name an installed unit) — the
    /// snapshot layer surfaces the returned message as a structured error.
    pub(crate) fn restore_checkpoint(
        &mut self,
        cp: SystemCheckpoint,
    ) -> Result<(), &'static str> {
        if cp.reflectors.len() != self.reflectors.len() {
            return Err("snapshot reflector count differs from the deployment");
        }
        if let LinkMode::Reflector(i) = cp.mode {
            if i >= self.reflectors.len() {
                return Err("snapshot link mode names an uninstalled reflector");
            }
        }
        // Steering and gain restores go through the normal command paths:
        // the captured values are already-applied (clamped) outputs, so
        // re-applying them is exact.
        self.ap.steer_to(cp.ap_steering_deg);
        self.mode = cp.mode;
        let per_unit = self
            .reflectors
            .iter_mut()
            .zip(self.last_tx_deg.iter_mut())
            .zip(self.commanded_tx.iter_mut());
        for (rcp, ((r, last_tx), commanded)) in cp.reflectors.into_iter().zip(per_unit) {
            r.steer_rx(rcp.rx_steering_deg);
            r.steer_tx(rcp.tx_steering_deg);
            r.set_gain_db(rcp.gain_db);
            r.set_amplifier_enabled(rcp.amp_enabled);
            r.set_modulating(rcp.modulating);
            r.restore_sensor_rng_state(rcp.sensor_rng);
            *last_tx = rcp.last_tx_deg;
            *commanded = rcp.commanded_tx;
        }
        self.tracker.restore_state(cp.tracker);
        self.predictor.restore_history(cp.predictor_history);
        self.fault_rng = movr_math::SimRng::from_state(cp.fault_rng);
        self.scene
            .restore_obstacle_state(cp.obstacles, cp.scene_generation);
        Ok(())
    }

    fn decision(&self, snr_db: f64, realigned: bool, cost: SimTime) -> LinkDecision {
        let rate = self.rate_table.rate_mbps(snr_db);
        LinkDecision {
            mode: self.mode,
            snr_db,
            rate_mbps: rate,
            supports_vr: self.rate_table.supports_vr(snr_db),
            realigned,
            realignment_cost: if realigned { cost } else { SimTime::ZERO },
        }
    }

    /// Convenience wrapper: evaluate at t = 0.
    pub fn evaluate(&mut self, world: &WorldState) -> LinkDecision {
        self.evaluate_at(0.0, world)
    }
}

/// Every mutable field of a [`MovrSystem`] mid-session, as plain data —
/// the crate-internal transport between the deployment and the snapshot
/// codec (`crate::snapshot`).
#[derive(Debug, Clone)]
pub(crate) struct SystemCheckpoint {
    /// Applied AP steering bearing, degrees.
    pub(crate) ap_steering_deg: f64,
    /// Serving mode.
    pub(crate) mode: LinkMode,
    /// Per-reflector device state, in installation order.
    pub(crate) reflectors: Vec<ReflectorCheckpoint>,
    /// Tracker state: `(rng, last_update_s, last_pose)`.
    pub(crate) tracker: ([u64; 4], f64, Option<movr_motion::TrackedPose>),
    /// Predictor observation history, oldest first.
    pub(crate) predictor_history: Vec<(f64, movr_motion::TrackedPose)>,
    /// Fault-injection RNG state.
    pub(crate) fault_rng: [u64; 4],
    /// Scene obstacles in force at the checkpoint instant.
    pub(crate) obstacles: Vec<movr_rfsim::Obstacle>,
    /// Scene obstacle-generation counter.
    pub(crate) scene_generation: u64,
}

/// One reflector's mutable state within a [`SystemCheckpoint`].
#[derive(Debug, Clone)]
pub(crate) struct ReflectorCheckpoint {
    /// Applied receive-beam bearing, degrees.
    pub(crate) rx_steering_deg: f64,
    /// Applied transmit-beam bearing, degrees.
    pub(crate) tx_steering_deg: f64,
    /// Applied amplifier gain, dB.
    pub(crate) gain_db: f64,
    /// Amplifier power state.
    pub(crate) amp_enabled: bool,
    /// Backscatter modulation flag.
    pub(crate) modulating: bool,
    /// Current-sensor noise RNG state.
    pub(crate) sensor_rng: [u64; 4],
    /// Last served transmit bearing (NaN before first use).
    pub(crate) last_tx_deg: f64,
    /// In-flight transmit-beam command (NaN before first use).
    pub(crate) commanded_tx: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use movr_motion::PlayerState;
    use movr_rfsim::{BodyPart, Obstacle};

    fn facing_ap_player() -> PlayerState {
        // In the play area east of the room, facing the AP on the west
        // wall.
        let center = Vec2::new(4.0, 2.5);
        let yaw = center.bearing_deg_to(Vec2::new(0.5, 2.5));
        PlayerState::standing(center, yaw)
    }

    #[test]
    fn clear_los_serves_direct() {
        let mut sys = MovrSystem::paper_setup(SystemConfig::default());
        let world = WorldState::player_only(facing_ap_player());
        let d = sys.evaluate(&world);
        assert_eq!(d.mode, LinkMode::Direct);
        assert!(d.supports_vr, "snr={}", d.snr_db);
        assert!(d.snr_db > 17.0);
    }

    #[test]
    fn hand_blockage_fails_over_to_reflector() {
        let mut sys = MovrSystem::paper_setup(SystemConfig::default());
        let player = facing_ap_player().with_hand(true);
        let world = WorldState::player_only(player);
        let d = sys.evaluate(&world);
        assert_eq!(d.mode, LinkMode::Reflector(0), "snr={}", d.snr_db);
        assert!(d.supports_vr, "MoVR must restore VR-grade SNR: {}", d.snr_db);
    }

    #[test]
    fn failover_and_return() {
        let mut sys = MovrSystem::paper_setup(SystemConfig::default());
        let clear = WorldState::player_only(facing_ap_player());
        let blocked = WorldState::player_only(facing_ap_player().with_hand(true));

        let d1 = sys.evaluate_at(0.0, &clear);
        assert_eq!(d1.mode, LinkMode::Direct);
        let d2 = sys.evaluate_at(1.0, &blocked);
        assert_eq!(d2.mode, LinkMode::Reflector(0));
        assert!(d2.realigned);
        let d3 = sys.evaluate_at(2.0, &blocked);
        assert_eq!(d3.mode, LinkMode::Reflector(0));
        // Stable service: no further realignment while nothing moves.
        assert!(!d3.realigned);
        let d4 = sys.evaluate_at(3.0, &clear);
        assert_eq!(d4.mode, LinkMode::Direct);
    }

    #[test]
    fn head_turn_blockage_recovered() {
        let mut sys = MovrSystem::paper_setup(SystemConfig::default());
        // Player turns 80° away from the AP — the AP leaves the receiver's
        // ±70° scan range and the head shadows the direct path, while the
        // north-wall reflector stays in the forward hemisphere.
        let player = facing_ap_player().with_yaw(100.0);
        let d = sys.evaluate(&WorldState::player_only(player));
        assert_eq!(d.mode, LinkMode::Reflector(0));
        assert!(d.snr_db > 15.0, "snr={}", d.snr_db);
    }

    #[test]
    fn bystander_blockage_recovered() {
        let mut sys = MovrSystem::paper_setup(SystemConfig::default());
        let mut world = WorldState::player_only(facing_ap_player());
        // A torso squarely on the AP↔headset line.
        world
            .others
            .push(Obstacle::new(BodyPart::Torso, Vec2::new(2.0, 2.5)));
        let d = sys.evaluate(&world);
        assert_eq!(d.mode, LinkMode::Reflector(0));
        assert!(d.supports_vr, "snr={}", d.snr_db);
    }

    #[test]
    fn command_loss_degrades_gracefully() {
        // A 30% command-loss rate on a *moving* player leaves the beam
        // stale sometimes, but the system keeps serving and recovers.
        use movr_motion::{MotionTrace, RandomWalk};
        let room = movr_rfsim::Room::paper_office();
        let trace = RandomWalk::with_gaze(&room, 42, 10.0, Vec2::new(0.5, 2.5));

        let run = |loss: f64| {
            let mut sys = MovrSystem::paper_setup(SystemConfig {
                command_loss_probability: loss,
                ..Default::default()
            });
            let mut worst = f64::INFINITY;
            let mut sum = 0.0;
            let mut n = 0;
            let mut t = 0.0;
            while t < 10.0 {
                let d = sys.evaluate_at(t, &trace.world_at(t));
                worst = worst.min(d.snr_db);
                sum += d.snr_db;
                n += 1;
                t += 1.0 / 90.0;
            }
            (sum / n as f64, worst)
        };
        let (clean_mean, _) = run(0.0);
        let (lossy_mean, lossy_worst) = run(0.3);
        // Graceful: mean within a couple of dB; still serviceable.
        assert!(
            clean_mean - lossy_mean < 2.0,
            "clean {clean_mean} lossy {lossy_mean}"
        );
        assert!(lossy_worst > -10.0, "worst {lossy_worst}");
    }

    #[test]
    fn tracking_realignment_is_cheap_sweep_is_not() {
        let sys = MovrSystem::paper_setup(SystemConfig::default());
        let track = sys.tracking_realignment_cost();
        let sweep = sys.sweep_realignment_cost();
        assert!(track < SimTime::from_millis(10), "track={track}");
        assert!(sweep > SimTime::from_millis(100), "sweep={sweep}");
        assert!(sweep.as_nanos() > 10 * track.as_nanos());
    }

    #[test]
    fn no_tracking_pays_sweep_on_blockage() {
        let cfg = SystemConfig {
            use_tracking: false,
            ..Default::default()
        };
        let mut sys = MovrSystem::paper_setup(cfg);
        let clear = WorldState::player_only(facing_ap_player());
        let blocked = WorldState::player_only(facing_ap_player().with_hand(true));
        sys.evaluate_at(0.0, &clear);
        let d = sys.evaluate_at(1.0, &blocked);
        assert_eq!(d.mode, LinkMode::Reflector(0));
        assert!(d.realigned);
        assert_eq!(d.realignment_cost, sys.sweep_realignment_cost());
    }

    #[test]
    fn checkpoint_round_trip_continues_bit_identically() {
        // Drive one system through a blockage, checkpoint mid-flight,
        // apply the capture to a freshly built twin, and require every
        // subsequent decision to match to the bit.
        let cfg = SystemConfig {
            command_loss_probability: 0.2,
            ..Default::default()
        };
        let mut live = MovrSystem::paper_setup(cfg);
        let clear = WorldState::player_only(facing_ap_player());
        let blocked = WorldState::player_only(facing_ap_player().with_hand(true));
        live.evaluate_at(0.0, &clear);
        live.evaluate_at(0.5, &blocked);

        let mut twin = MovrSystem::paper_setup(cfg);
        twin.restore_checkpoint(live.checkpoint()).unwrap();
        assert_eq!(twin.mode(), live.mode());
        for k in 1..40 {
            let t = 0.5 + k as f64 * 0.02;
            let world = if k % 3 == 0 { &clear } else { &blocked };
            let a = live.evaluate_at(t, world);
            let b = twin.evaluate_at(t, world);
            assert_eq!(a.mode, b.mode, "t={t}");
            assert_eq!(a.snr_db.to_bits(), b.snr_db.to_bits(), "t={t}");
            assert_eq!(a.realigned, b.realigned, "t={t}");
            assert_eq!(a.realignment_cost, b.realignment_cost, "t={t}");
        }
    }

    #[test]
    fn checkpoint_rejects_mismatched_deployment() {
        let mut donor = MovrSystem::paper_setup(SystemConfig::default());
        donor.add_reflector(MovrReflector::wall_mounted(
            Vec2::new(4.0, 4.75),
            -110.0,
            3,
        ));
        let cp = donor.checkpoint();
        let mut single = MovrSystem::paper_setup(SystemConfig::default());
        assert!(single.restore_checkpoint(cp).is_err());
    }

    #[test]
    fn oracle_reflector_path_is_vr_grade() {
        let mut sys = MovrSystem::paper_setup(SystemConfig::default());
        let world = WorldState::player_only(facing_ap_player().with_hand(true));
        let b = sys.evaluate_via_reflector(0, &world);
        assert!(!b.saturated);
        assert!(b.end_snr_db > 15.0, "snr={}", b.end_snr_db);
    }

    #[test]
    fn direct_and_reflector_evaluations_are_consistent() {
        let mut sys = MovrSystem::paper_setup(SystemConfig::default());
        let world = WorldState::player_only(facing_ap_player());
        let direct = sys.evaluate_direct(&world);
        let via = sys.evaluate_via_reflector(0, &world).end_snr_db;
        let decision = sys.evaluate(&world);
        // The committed decision matches the better candidate (direct is
        // preferred when above threshold). Each evaluation draws fresh
        // tracker noise from the shared RNG stream, so two measurements
        // of the same pose differ at noise scale — compare with a
        // noise-sized tolerance, not bit-exactly.
        assert!(
            decision.snr_db >= direct.min(via) - 0.1,
            "decision={} direct={} via={} mode={:?}",
            decision.snr_db,
            direct,
            via,
            decision.mode
        );
    }
}
