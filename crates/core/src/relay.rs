//! Physics of the AP → reflector → headset two-hop link.
//!
//! MoVR is an *analog* relay: whatever RF lands in its receive beam is
//! amplified (by the closed-loop gain of the amplify-leak feedback loop)
//! and re-radiated through the transmit beam. Two consequences the
//! budgets here capture:
//!
//! * When the amplifier saturates (`G ≥ L`) the output is garbage — the
//!   relayed link delivers **no** signal, not a stronger one.
//! * The amplifier amplifies its own front-end noise along with the
//!   signal, so the end-to-end SNR cannot exceed the SNR at the
//!   reflector's *input*. We model this as
//!   `SNR_end = min(SNR_hop1, SNR_hop2)` — the standard cascade bound for
//!   an amplify-and-forward relay.

use crate::reflector::MovrReflector;
use movr_phased_array::SteeredArray;
use movr_radio::{ArrayPattern, RadioEndpoint};
use movr_rfsim::{LinkBatch, NoiseModel, Pattern, Scene, TracedLink};

/// The reflector's analog front end is a low-noise amplifier chain with no
/// baseband processing: a better noise figure and none of the headset's
/// implementation loss. Its input SNR — which bounds the end-to-end SNR of
/// the relayed link — is therefore computed against this model, not the
/// headset's.
fn relay_front_end_noise(scene: &Scene) -> NoiseModel {
    NoiseModel {
        bandwidth_hz: scene.noise().bandwidth_hz,
        noise_figure_db: 4.0,
        implementation_loss_db: 0.0,
        temperature_k: scene.noise().temperature_k,
    }
}

/// The reflector front end's noise model in `scene` — the budget hop-1
/// SNR is computed against. Exposed so batched sweeps can fold it into a
/// [`LinkBatch`] once (via [`LinkBatch::with_noise`]) instead of
/// rebuilding it per probe; both routes compute the same floor from the
/// same fields, so the SNRs are bit-identical.
pub fn relay_input_noise(scene: &Scene) -> NoiseModel {
    relay_front_end_noise(scene)
}

/// The budget of a relayed link.
#[derive(Debug, Clone, Copy)]
pub struct RelayBudget {
    /// Power arriving at the reflector's receive array, dBm.
    pub hop1_received_dbm: f64,
    /// SNR at the reflector input, dB.
    pub hop1_snr_db: f64,
    /// Power re-radiated by the reflector, dBm (`None` when the amplifier
    /// is off or saturated).
    pub relay_output_dbm: Option<f64>,
    /// Power arriving at the headset, dBm (−∞ when no output).
    pub hop2_received_dbm: f64,
    /// SNR of hop 2 alone at the headset, dB.
    pub hop2_snr_db: f64,
    /// End-to-end SNR, dB: `min(hop1, hop2)`, −∞ when saturated/off.
    pub end_snr_db: f64,
    /// True when the amplifier was saturated at these settings.
    pub saturated: bool,
}

/// Evaluates the relayed link with the current beam/gain settings of all
/// three nodes.
pub fn relay_link(
    scene: &Scene,
    ap: &RadioEndpoint,
    reflector: &MovrReflector,
    headset: &RadioEndpoint,
) -> RelayBudget {
    let hop1 = scene.trace_link(ap.position(), reflector.position());
    let hop2 = scene.trace_link(reflector.position(), headset.position());
    relay_link_on(&hop1, &hop2, ap, reflector, headset.array())
}

/// [`relay_link`] over already-traced hops: `hop1` must be
/// AP → reflector and `hop2` reflector → headset in the same scene.
/// Sweeps trace each hop once and call this per beam candidate, paying
/// only the O(paths) reweighting; the result is bit-identical to
/// [`relay_link`].
pub fn relay_link_on(
    hop1: &TracedLink<'_>,
    hop2: &TracedLink<'_>,
    ap: &RadioEndpoint,
    reflector: &MovrReflector,
    headset_array: &SteeredArray,
) -> RelayBudget {
    relay_link_with(
        hop1,
        hop2,
        &ArrayPattern(ap.array()),
        ap.tx_power_dbm(),
        reflector,
        &ArrayPattern(reflector.rx_array()),
        &ArrayPattern(reflector.tx_array()),
        &ArrayPattern(headset_array),
    )
}

/// [`relay_link_on`] with the four antenna patterns supplied by the
/// caller. The patterns **must** describe the same steering as the live
/// endpoints (`ap_pattern` = AP array, `relay_rx`/`relay_tx` = the
/// reflector's arrays) — the point is that a sweep can wrap each one in
/// a [`movr_rfsim::MemoPattern`] scoped to where its steering is fixed,
/// so repeated path-angle queries cost a lookup. Bit-identical to
/// [`relay_link_on`] for faithful patterns.
#[allow(clippy::too_many_arguments)] // lint: the four patterns + reflector are the point of this entry
pub fn relay_link_with(
    hop1: &TracedLink<'_>,
    hop2: &TracedLink<'_>,
    ap_pattern: &dyn Pattern,
    ap_tx_power_dbm: f64,
    reflector: &MovrReflector,
    relay_rx: &dyn Pattern,
    relay_tx: &dyn Pattern,
    headset_pattern: &dyn Pattern,
) -> RelayBudget {
    let scene = hop1.scene();
    let hop1_eval = hop1.evaluate(ap_pattern, ap_tx_power_dbm, relay_rx);
    let hop1_snr_db = relay_front_end_noise(scene).snr_db(hop1_eval.received_dbm);

    let saturated = reflector.is_saturated();
    let relay_output_dbm = reflector
        .effective_gain_db()
        .map(|g| hop1_eval.received_dbm + g);

    match relay_output_dbm {
        Some(out_dbm) => {
            let hop2_eval = hop2.evaluate(relay_tx, out_dbm, headset_pattern);
            let hop2_snr_db = scene.noise().snr_db(hop2_eval.received_dbm);
            RelayBudget {
                hop1_received_dbm: hop1_eval.received_dbm,
                hop1_snr_db,
                relay_output_dbm,
                hop2_received_dbm: hop2_eval.received_dbm,
                hop2_snr_db,
                end_snr_db: hop1_snr_db.min(hop2_snr_db),
                saturated,
            }
        }
        None => RelayBudget {
            hop1_received_dbm: hop1_eval.received_dbm,
            hop1_snr_db,
            relay_output_dbm: None,
            hop2_received_dbm: f64::NEG_INFINITY,
            hop2_snr_db: f64::NEG_INFINITY,
            end_snr_db: f64::NEG_INFINITY,
            saturated,
        },
    }
}

/// Round-trip reflection power back at the AP, dBm — what the AP's
/// backscatter probe measures (before modulation conversion): AP →
/// reflector (current beams) → amplifier → back toward the AP → AP's
/// receive array. `None` when the amplifier is off or saturated.
pub fn round_trip_reflection_dbm(
    scene: &Scene,
    ap: &RadioEndpoint,
    reflector: &MovrReflector,
) -> Option<f64> {
    let forward = scene.trace_link(ap.position(), reflector.position());
    let back = scene.trace_link(reflector.position(), ap.position());
    round_trip_reflection_on(&forward, &back, ap.array(), ap.tx_power_dbm(), reflector)
}

/// [`round_trip_reflection_dbm`] over already-traced hops: `forward`
/// must be AP → reflector and `back` reflector → AP in the same scene.
/// `ap_array` is the AP's current (possibly pre-steered) array, used on
/// both ends of the round trip. Bit-identical to the plain form; the
/// alignment sweep calls this 10,201 times over two fixed traces.
pub fn round_trip_reflection_on(
    forward: &TracedLink<'_>,
    back: &TracedLink<'_>,
    ap_array: &SteeredArray,
    ap_tx_power_dbm: f64,
    reflector: &MovrReflector,
) -> Option<f64> {
    round_trip_reflection_with(
        forward,
        back,
        &ArrayPattern(ap_array),
        ap_tx_power_dbm,
        reflector.effective_gain_db(),
        &ArrayPattern(reflector.rx_array()),
        &ArrayPattern(reflector.tx_array()),
    )
}

/// [`round_trip_reflection_on`] with the patterns (and the reflector's
/// effective gain) supplied by the caller, so a sweep can memoize gain
/// queries per candidate beam ([`movr_rfsim::MemoPattern`]) and hoist
/// the per-posture gain computation out of its inner loop. The patterns
/// must describe the same steering as the live devices; the result is
/// then bit-identical to [`round_trip_reflection_on`].
pub fn round_trip_reflection_with(
    forward: &TracedLink<'_>,
    back: &TracedLink<'_>,
    ap_pattern: &dyn Pattern,
    ap_tx_power_dbm: f64,
    relay_gain_db: Option<f64>,
    relay_rx: &dyn Pattern,
    relay_tx: &dyn Pattern,
) -> Option<f64> {
    let hop1 = forward.evaluate(ap_pattern, ap_tx_power_dbm, relay_rx);
    let out_dbm = hop1.received_dbm + relay_gain_db?;
    let hop2 = back.evaluate(relay_tx, out_dbm, ap_pattern);
    Some(hop2.received_dbm)
}

/// [`round_trip_reflection_with`] over frozen hops and per-path gain
/// rows: `forward`/`back` are the two legs as [`LinkBatch`]es and each
/// gain slice weights that leg's paths in path order (AP gains over the
/// forward departures and back arrivals, reflector RX over the forward
/// arrivals, reflector TX over the back departures). A sweep computes
/// the AP rows once per codebook page and the reflector rows once per
/// posture, so each probe is two multiply-accumulate passes.
/// Bit-identical to [`round_trip_reflection_with`] for faithful rows:
/// the hop evaluations replicate [`movr_rfsim::Scene::eval_paths`]
/// term-for-term, and the hop-1 power skipped when the amplifier is
/// off/saturated was computed-then-discarded in the scalar form.
///
/// # Panics
/// Panics if a gain row's length differs from its leg's tap count.
#[allow(clippy::too_many_arguments)] // lint: the four gain rows are the point of this entry
pub fn round_trip_reflection_batched(
    forward: &LinkBatch,
    back: &LinkBatch,
    ap_forward_gains: &[f64],
    ap_back_gains: &[f64],
    ap_tx_power_dbm: f64,
    relay_gain_db: Option<f64>,
    relay_rx_gains: &[f64],
    relay_tx_gains: &[f64],
) -> Option<f64> {
    let gain_db = relay_gain_db?;
    let hop1_dbm = forward.received_dbm(ap_tx_power_dbm, ap_forward_gains, relay_rx_gains);
    let out_dbm = hop1_dbm + gain_db;
    Some(back.received_dbm(out_dbm, relay_tx_gains, ap_back_gains))
}

/// End-to-end relay SNR for one headset-beam candidate of a reflection
/// sweep whose hop-1 weighting is fixed: the caller evaluates hop 1 once
/// (received power plus front-end SNR against [`relay_input_noise`],
/// both loop invariants) and this folds in the per-candidate hop 2.
/// `hop2` must carry the scene's receiver noise (the default from
/// [`movr_rfsim::TracedLink::batch`]); `relay_tx_gains` weight its
/// departures and `headset_gains` its arrivals. Bit-identical to
/// [`relay_link_with`]'s `end_snr_db` for faithful rows.
///
/// # Panics
/// Panics if a gain row's length differs from `hop2`'s tap count.
pub fn relay_end_snr_batched(
    hop1_received_dbm: f64,
    hop1_snr_db: f64,
    relay_gain_db: Option<f64>,
    hop2: &LinkBatch,
    relay_tx_gains: &[f64],
    headset_gains: &[f64],
) -> f64 {
    match relay_gain_db {
        Some(gain_db) => {
            let out_dbm = hop1_received_dbm + gain_db;
            let hop2_received = hop2.received_dbm(out_dbm, relay_tx_gains, headset_gains);
            hop1_snr_db.min(hop2.snr_db(hop2_received))
        }
        None => f64::NEG_INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use movr_math::Vec2;

    /// The canonical layout: AP mid-west wall, reflector high on the
    /// north wall (short AP–reflector hop, both within every array's scan
    /// range), headset in the south-east play area, everything aimed
    /// sensibly.
    fn setup() -> (Scene, RadioEndpoint, MovrReflector, RadioEndpoint) {
        let scene = Scene::paper_office();
        let mut ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0);
        let mut reflector = MovrReflector::wall_mounted(Vec2::new(1.0, 4.75), -70.0, 7);
        let hs_pos = Vec2::new(3.5, 1.5);
        let mut headset =
            RadioEndpoint::paper_radio(hs_pos, hs_pos.bearing_deg_to(Vec2::new(1.0, 4.75)));

        ap.steer_toward(reflector.position());
        let to_ap = reflector.position().bearing_deg_to(ap.position());
        let to_hs = reflector.position().bearing_deg_to(headset.position());
        reflector.steer_rx(to_ap);
        reflector.steer_tx(to_hs);
        headset.steer_toward(reflector.position());

        // Safe gain: well below the leakage at these beams.
        let safe = reflector.loop_attenuation_db() - 6.0;
        reflector.set_gain_db(safe);
        (scene, ap, reflector, headset)
    }

    #[test]
    fn relayed_link_is_vr_grade() {
        let (scene, ap, reflector, headset) = setup();
        let b = relay_link(&scene, &ap, &reflector, &headset);
        assert!(!b.saturated);
        assert!(b.relay_output_dbm.is_some());
        assert!(
            b.end_snr_db > 15.0,
            "relayed SNR should be VR-grade, got {}",
            b.end_snr_db
        );
    }

    #[test]
    fn end_snr_is_min_of_hops() {
        let (scene, ap, reflector, headset) = setup();
        let b = relay_link(&scene, &ap, &reflector, &headset);
        assert_eq!(b.end_snr_db, b.hop1_snr_db.min(b.hop2_snr_db));
    }

    #[test]
    fn saturated_amplifier_kills_the_link() {
        let (scene, ap, mut reflector, headset) = setup();
        reflector.set_gain_db(reflector.amplifier().max_gain_db);
        // Max gain (48 dB) exceeds the loop attenuation when the antenna
        // coupling sits near its 35 dB floor (loop ≈ 43 dB), so some beam
        // pairs saturate at full gain.
        if reflector.is_saturated() {
            let b = relay_link(&scene, &ap, &reflector, &headset);
            assert!(b.saturated);
            assert_eq!(b.end_snr_db, f64::NEG_INFINITY);
            assert!(b.relay_output_dbm.is_none());
        }
    }

    #[test]
    fn amplifier_off_kills_the_link() {
        let (scene, ap, mut reflector, headset) = setup();
        reflector.set_amplifier_enabled(false);
        let b = relay_link(&scene, &ap, &reflector, &headset);
        assert!(!b.saturated);
        assert_eq!(b.end_snr_db, f64::NEG_INFINITY);
    }

    #[test]
    fn more_gain_more_snr_until_hop1_limits() {
        let (scene, ap, mut reflector, headset) = setup();
        let leak = reflector.loop_attenuation_db();
        let g_low = reflector.set_gain_db(leak - 20.0);
        let eff_low = reflector.effective_gain_db().unwrap();
        let low = relay_link(&scene, &ap, &reflector, &headset);
        let g_high = reflector.set_gain_db(leak - 6.0);
        let eff_high = reflector.effective_gain_db().unwrap();
        let high = relay_link(&scene, &ap, &reflector, &headset);
        assert!(g_high - g_low > 3.0, "gain range too small to test");
        // hop2 tracks the *effective* (closed-loop) gain difference
        // exactly — regeneration at the tighter margin included.
        let delta = high.hop2_snr_db - low.hop2_snr_db;
        let expected = eff_high - eff_low;
        assert!(
            (delta - expected).abs() < 1e-9,
            "hop2 delta {delta} vs effective gain delta {expected}"
        );
        assert!(expected > g_high - g_low, "regeneration must add on top");
        // hop1 is unaffected by the gain setting.
        assert!((high.hop1_snr_db - low.hop1_snr_db).abs() < 1e-9);
        // And the end SNR never exceeds hop1's.
        assert!(high.end_snr_db <= high.hop1_snr_db + 1e-9);
    }

    #[test]
    fn misaimed_reflector_tx_loses_headset() {
        let (scene, ap, mut reflector, headset) = setup();
        let aligned = relay_link(&scene, &ap, &reflector, &headset).end_snr_db;
        let to_hs = reflector.position().bearing_deg_to(headset.position());
        reflector.steer_tx(to_hs + 40.0);
        // Re-apply a safe gain for the new beam pair.
        reflector.set_gain_db(reflector.loop_attenuation_db() - 6.0);
        let misaimed = relay_link(&scene, &ap, &reflector, &headset).end_snr_db;
        assert!(aligned - misaimed > 10.0, "aligned={aligned} misaimed={misaimed}");
    }

    #[test]
    fn round_trip_reflection_exists_and_tracks_beams() {
        let (scene, ap, mut reflector, _headset) = setup();
        // Point both reflector beams back at the AP (probe posture).
        let to_ap = reflector.position().bearing_deg_to(ap.position());
        reflector.steer_both(to_ap);
        reflector.set_gain_db(reflector.loop_attenuation_db() - 6.0);
        let aimed = round_trip_reflection_dbm(&scene, &ap, &reflector).unwrap();
        // Swing the beams away: the echo collapses.
        reflector.steer_both(to_ap + 35.0);
        reflector.set_gain_db(reflector.loop_attenuation_db() - 6.0);
        let away = round_trip_reflection_dbm(&scene, &ap, &reflector).unwrap();
        assert!(aimed - away > 15.0, "aimed={aimed} away={away}");
    }

    #[test]
    fn round_trip_none_when_off() {
        let (scene, ap, mut reflector, _hs) = setup();
        reflector.set_amplifier_enabled(false);
        assert!(round_trip_reflection_dbm(&scene, &ap, &reflector).is_none());
    }

    #[test]
    fn batched_round_trip_bit_identical_to_scalar() {
        let (scene, ap, mut reflector, _hs) = setup();
        let to_ap = reflector.position().bearing_deg_to(ap.position());
        let forward = scene.trace_link(ap.position(), reflector.position());
        let back = scene.trace_link(reflector.position(), ap.position());
        let fwd = forward.batch();
        let bck = back.batch();
        let ap_fwd = ap.array().gain_dbi_batch(fwd.departure_deg());
        let ap_bck = ap.array().gain_dbi_batch(bck.arrival_deg());
        for offset in [0.0, 3.0, 35.0] {
            reflector.steer_both(to_ap + offset);
            reflector.set_gain_db(reflector.loop_attenuation_db() - 6.0);
            let rx = reflector.rx_array().gain_dbi_batch(fwd.arrival_deg());
            let tx = reflector.tx_array().gain_dbi_batch(bck.departure_deg());
            let scalar = round_trip_reflection_on(
                &forward,
                &back,
                ap.array(),
                ap.tx_power_dbm(),
                &reflector,
            )
            .expect("amplifier on");
            let batched = round_trip_reflection_batched(
                &fwd,
                &bck,
                &ap_fwd,
                &ap_bck,
                ap.tx_power_dbm(),
                reflector.effective_gain_db(),
                &rx,
                &tx,
            )
            .expect("amplifier on");
            assert_eq!(batched.to_bits(), scalar.to_bits(), "offset={offset}");
        }
        reflector.set_amplifier_enabled(false);
        assert!(round_trip_reflection_batched(
            &fwd,
            &bck,
            &ap_fwd,
            &ap_bck,
            ap.tx_power_dbm(),
            reflector.effective_gain_db(),
            &[],
            &[],
        )
        .is_none());
    }

    #[test]
    fn batched_relay_end_snr_bit_identical_to_scalar() {
        let (scene, ap, reflector, headset) = setup();
        let scalar = relay_link(&scene, &ap, &reflector, &headset);
        let hop1 = scene.trace_link(ap.position(), reflector.position());
        let hop2 = scene.trace_link(reflector.position(), headset.position());
        let h1 = hop1.batch().with_noise(&relay_input_noise(&scene));
        let h2 = hop2.batch();
        let ap_g = ap.array().gain_dbi_batch(h1.departure_deg());
        let rx_g = reflector.rx_array().gain_dbi_batch(h1.arrival_deg());
        let tx_g = reflector.tx_array().gain_dbi_batch(h2.departure_deg());
        let hs_g = headset.array().gain_dbi_batch(h2.arrival_deg());
        let r1 = h1.received_dbm(ap.tx_power_dbm(), &ap_g, &rx_g);
        let s1 = h1.snr_db(r1);
        assert_eq!(r1.to_bits(), scalar.hop1_received_dbm.to_bits());
        assert_eq!(s1.to_bits(), scalar.hop1_snr_db.to_bits());
        let end = relay_end_snr_batched(
            r1,
            s1,
            reflector.effective_gain_db(),
            &h2,
            &tx_g,
            &hs_g,
        );
        assert_eq!(end.to_bits(), scalar.end_snr_db.to_bits());
        // Amplifier off: the batched form must report the same dead link.
        assert_eq!(
            relay_end_snr_batched(r1, s1, None, &h2, &tx_g, &hs_g),
            f64::NEG_INFINITY
        );
    }
}
