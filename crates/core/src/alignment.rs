//! Backscatter beam alignment (§4.1).
//!
//! The reflector must aim its receive beam at the AP and its transmit
//! beam at the headset — but it can neither transmit nor receive, so it
//! cannot run any standard beam-training handshake. The paper's protocol
//! delegates measurement to the AP:
//!
//! 1. The reflector sets *both* beams to a candidate θ₁ and on/off
//!    modulates its amplifier at f₂.
//! 2. The AP sets both of its beams to a candidate θ₂, transmits a tone
//!    at f₁, and measures the power of the *reflected* tone — which the
//!    modulation has shifted to f₁+f₂, separating it from the AP's own
//!    TX→RX leakage at f₁.
//! 3. The (θ₁, θ₂) pair with the highest sideband power is the alignment:
//!    θ₁ is the incidence angle at the reflector, θ₂ the AP's bearing to
//!    the reflector.
//!
//! The reflection angle (reflector → headset) is found analogously: the
//! AP feeds the reflector from the now-known incidence angle, the
//! reflector sweeps only its transmit beam, and the headset — which *does*
//! have a receive chain — reports SNR per candidate over the control
//! channel.

use crate::reflector::MovrReflector;
use crate::relay::{relay_end_snr_batched, relay_input_noise, round_trip_reflection_batched};
use movr_math::{convert, SimRng};
use movr_obs::{null_capture, Capture, Event};
use movr_phased_array::{Codebook, PatternTable};
use movr_radio::{RadioEndpoint, ToneProbe};
use movr_rfsim::Scene;
use movr_sim::SimTime;

/// Alignment-protocol parameters.
#[derive(Debug, Clone)]
pub struct AlignmentConfig {
    /// The AP's beam sweep (θ₂ candidates, absolute bearings).
    pub ap_codebook: Codebook,
    /// The reflector's beam sweep (θ₁ candidates, absolute bearings).
    pub reflector_codebook: Codebook,
    /// The AP-side tone measurement chain.
    pub probe: ToneProbe,
    /// Amplifier gain during probing, dB — a conservative value safely
    /// below the minimum leakage attenuation so no probe posture can
    /// saturate the loop.
    pub probe_gain_db: f64,
    /// Whether the reflector modulates (true = the paper's protocol;
    /// false = the ablation that shows why modulation is necessary).
    pub modulated: bool,
    /// AP-side dwell per (θ₁, θ₂) measurement.
    pub dwell: SimTime,
    /// Control-channel latency to command each reflector beam change.
    pub beam_command_latency: SimTime,
}

impl Default for AlignmentConfig {
    fn default() -> Self {
        AlignmentConfig {
            ap_codebook: Codebook::paper_sweep(),
            reflector_codebook: Codebook::paper_sweep(),
            probe: ToneProbe::default(),
            probe_gain_db: 20.0,
            modulated: true,
            dwell: SimTime::from_micros(50),
            beam_command_latency: SimTime::from_micros(7_500),
        }
    }
}

/// The outcome of an alignment sweep.
#[derive(Debug, Clone, Copy)]
pub struct AlignmentResult {
    /// Best reflector beam (θ₁), absolute bearing in degrees.
    pub reflector_angle_deg: f64,
    /// Best AP beam (θ₂), absolute bearing in degrees.
    pub ap_angle_deg: f64,
    /// Sideband power at the peak, dBm.
    pub peak_power_dbm: f64,
    /// Number of (θ₁, θ₂) measurements taken.
    pub measurements: usize,
    /// Wall-clock cost of the sweep.
    pub elapsed: SimTime,
}

/// Runs the incidence-angle estimation: full (θ₁ × θ₂) sweep with the
/// reflector echoing back to the AP.
///
/// `ap` and `reflector` are taken by value (the protocol steers them
/// freely); callers keep their own copies of the operational settings.
pub fn estimate_incidence(
    scene: &Scene,
    ap: RadioEndpoint,
    reflector: MovrReflector,
    config: &AlignmentConfig,
    rng: &mut SimRng,
) -> AlignmentResult {
    estimate_incidence_recorded(scene, ap, reflector, config, rng, null_capture())
}

/// [`estimate_incidence`] with observability. The sweep is wrapped in an
/// `alignment_sweep` span starting at `cap.start`; a sim-time cursor
/// advances by `beam_command_latency` per reflector beam change and by
/// `dwell` per (θ₁, θ₂) probe, so every `beam_probe` event
/// (`theta1_deg`, `theta2_deg`, `power_dbm`) is stamped with the instant
/// its measurement completes. The winning pair is announced as
/// `alignment_chosen`. The estimate itself is bit-identical to the plain
/// function: the recorder draws nothing from `rng`.
pub fn estimate_incidence_recorded(
    scene: &Scene,
    ap: RadioEndpoint,
    mut reflector: MovrReflector,
    config: &AlignmentConfig,
    rng: &mut SimRng,
    cap: Capture<'_>,
) -> AlignmentResult {
    reflector.set_gain_db(config.probe_gain_db);
    reflector.set_modulating(config.modulated);

    let Capture { start, rec } = cap;
    let span = if rec.enabled() {
        Some(rec.start_span(start, "alignment_sweep"))
    } else {
        None
    };
    let mut cursor = start;
    let mut best = (f64::NEG_INFINITY, 0.0, 0.0);
    let mut measurements = 0usize;

    // Path geometry is frozen for the whole sweep: trace both legs of
    // the round trip once, freeze them into tap batches, and evaluate
    // the AP's whole codebook page against the fixed path bearings with
    // the SoA batch kernels up front. Per θ₁ the reflector's own gain
    // rows are batched once; each probe below is then two
    // multiply-accumulate passes over the taps — bit-identical to
    // steering and re-tracing per probe, at a fraction of the cost.
    let fwd = scene.trace_link(ap.position(), reflector.position()).batch();
    let bck = scene.trace_link(reflector.position(), ap.position()).batch();
    let ap_table = PatternTable::new(ap.array(), &config.ap_codebook);
    let ap_fwd_page = ap_table.fill_page(fwd.departure_deg());
    let ap_bck_page = ap_table.fill_page(bck.arrival_deg());
    // The probe's leakage and floor terms are fixed for the sweep too.
    let meter = if config.modulated {
        config.probe.modulated_meter(ap.tx_power_dbm())
    } else {
        config.probe.unmodulated_meter(ap.tx_power_dbm())
    };

    for &theta1 in config.reflector_codebook.beams() {
        reflector.steer_both(theta1);
        cursor += config.beam_command_latency;
        let relay_gain_db = reflector.effective_gain_db();
        let rx_gains = reflector.rx_array().gain_dbi_batch(fwd.arrival_deg());
        let tx_gains = reflector.tx_array().gain_dbi_batch(bck.departure_deg());
        for (j, (theta2, _)) in ap_table.entries().enumerate() {
            let reflected = round_trip_reflection_batched(
                &fwd,
                &bck,
                ap_fwd_page.row(j),
                ap_bck_page.row(j),
                ap.tx_power_dbm(),
                relay_gain_db,
                &rx_gains,
                &tx_gains,
            )
            .unwrap_or(f64::NEG_INFINITY);
            let reading = meter.measure(reflected, rng);
            measurements += 1;
            cursor += config.dwell;
            if rec.enabled() {
                rec.record(
                    Event::new(cursor, "beam_probe")
                        .with("theta1_deg", theta1)
                        .with("theta2_deg", theta2)
                        .with("power_dbm", reading.power_dbm),
                );
            }
            if reading.power_dbm > best.0 {
                best = (reading.power_dbm, theta1, theta2);
            }
        }
    }

    let n1 = convert::usize_to_u64(config.reflector_codebook.len());
    let n2 = convert::usize_to_u64(config.ap_codebook.len());
    let elapsed = SimTime::from_nanos(
        n1 * config.beam_command_latency.as_nanos() + n1 * n2 * config.dwell.as_nanos(),
    );
    debug_assert_eq!(start + elapsed, cursor, "cursor must mirror the cost model");

    if let Some(id) = span {
        rec.record(
            Event::new(cursor, "alignment_chosen")
                .with("reflector_deg", best.1)
                .with("ap_deg", best.2)
                .with("peak_dbm", best.0)
                .with("measurements", measurements),
        );
        rec.end_span(cursor, "alignment_sweep", id);
    }

    AlignmentResult {
        reflector_angle_deg: best.1,
        ap_angle_deg: best.2,
        peak_power_dbm: best.0,
        measurements,
        elapsed,
    }
}

/// Two-stage hierarchical incidence estimation: a coarse sweep at
/// `coarse_step_deg` over the full codebooks locates the peak to within
/// one coarse cell; a fine 1° sweep over that cell pins it down. Cuts
/// the measurement count from |θ₁|·|θ₂| to roughly
/// `(n/c)² + (2c+1)²` — for the paper's 101×101 1° sweep with a 10°
/// coarse stage, ~121 + 441 measurements instead of 10 201 — at the same
/// final resolution. (Real 802.11ad beam training is hierarchical for
/// exactly this reason.)
pub fn estimate_incidence_hierarchical(
    scene: &Scene,
    ap: RadioEndpoint,
    reflector: MovrReflector,
    config: &AlignmentConfig,
    coarse_step_deg: f64,
    rng: &mut SimRng,
) -> AlignmentResult {
    estimate_incidence_hierarchical_recorded(
        scene,
        ap,
        reflector,
        config,
        coarse_step_deg,
        rng,
        null_capture(),
    )
}

/// [`estimate_incidence_hierarchical`] with observability: each stage
/// runs as its own recorded sweep (two `alignment_sweep` spans back to
/// back — the fine stage starts where the coarse stage's cost model
/// ends), so a timeline shows exactly where the measurement budget went.
pub fn estimate_incidence_hierarchical_recorded(
    scene: &Scene,
    ap: RadioEndpoint,
    reflector: MovrReflector,
    config: &AlignmentConfig,
    coarse_step_deg: f64,
    rng: &mut SimRng,
    mut cap: Capture<'_>,
) -> AlignmentResult {
    assert!(coarse_step_deg >= 1.0, "coarse step below the fine step");
    let full_r = config.reflector_codebook.beams();
    let full_a = config.ap_codebook.beams();
    let (r_lo, r_hi) = (full_r[0], *full_r.last().expect("non-empty"));
    let (a_lo, a_hi) = (full_a[0], *full_a.last().expect("non-empty"));

    // Stage 1: coarse.
    let coarse_cfg = AlignmentConfig {
        reflector_codebook: Codebook::sweep(r_lo, r_hi, coarse_step_deg),
        ap_codebook: Codebook::sweep(a_lo, a_hi, coarse_step_deg),
        ..config.clone()
    };
    let coarse_start = cap.start;
    let coarse = estimate_incidence_recorded(
        scene,
        ap,
        reflector.clone(),
        &coarse_cfg,
        rng,
        cap.stage(coarse_start),
    );

    // Stage 2: fine, one coarse cell around the winner (clamped to the
    // original sweep bounds).
    let fine_cfg = AlignmentConfig {
        reflector_codebook: Codebook::sweep(
            (coarse.reflector_angle_deg - coarse_step_deg).max(r_lo),
            (coarse.reflector_angle_deg + coarse_step_deg).min(r_hi),
            1.0,
        ),
        ap_codebook: Codebook::sweep(
            (coarse.ap_angle_deg - coarse_step_deg).max(a_lo),
            (coarse.ap_angle_deg + coarse_step_deg).min(a_hi),
            1.0,
        ),
        ..config.clone()
    };
    let fine = estimate_incidence_recorded(
        scene,
        ap,
        reflector,
        &fine_cfg,
        rng,
        cap.stage(coarse_start + coarse.elapsed),
    );

    AlignmentResult {
        reflector_angle_deg: fine.reflector_angle_deg,
        ap_angle_deg: fine.ap_angle_deg,
        peak_power_dbm: fine.peak_power_dbm,
        measurements: coarse.measurements + fine.measurements,
        elapsed: coarse.elapsed + fine.elapsed,
    }
}

/// The outcome of the reflection-angle (reflector → headset) estimation.
#[derive(Debug, Clone, Copy)]
pub struct ReflectionResult {
    /// Best reflector transmit beam, absolute bearing in degrees.
    pub tx_angle_deg: f64,
    /// Best headset receive beam, absolute bearing in degrees.
    pub headset_angle_deg: f64,
    /// End-to-end SNR at the peak, dB.
    pub peak_snr_db: f64,
    /// Number of measurements taken.
    pub measurements: usize,
    /// Wall-clock cost of the sweep.
    pub elapsed: SimTime,
}

/// What the reflection-angle search sweeps over: the reflector's
/// transmit-beam candidates, the headset's receive-beam candidates, and
/// the shared protocol knobs (dwell, command latency, probe chain).
#[derive(Debug, Clone, Copy)]
pub struct SweepParams<'a> {
    /// Reflector transmit-beam candidates (absolute bearings, degrees).
    pub tx_codebook: &'a Codebook,
    /// Headset receive-beam candidates (absolute bearings, degrees).
    pub headset_codebook: &'a Codebook,
    /// Protocol knobs shared with the incidence stage.
    pub config: &'a AlignmentConfig,
}

/// Estimates the reflection angle: the reflector's receive beam stays on
/// the (already estimated) AP bearing; its transmit beam sweeps
/// `sweep.tx_codebook` while the headset sweeps `sweep.headset_codebook`
/// and reports SNR. SNR reports carry `snr_sigma_db` of measurement
/// noise.
pub fn estimate_reflection(
    scene: &Scene,
    ap: &RadioEndpoint,
    reflector: MovrReflector,
    headset: RadioEndpoint,
    sweep: &SweepParams<'_>,
    rng: &mut SimRng,
) -> ReflectionResult {
    estimate_reflection_recorded(scene, ap, reflector, headset, sweep, rng, null_capture())
}

/// [`estimate_reflection`] with observability: a `reflection_sweep` span
/// wraps the search; each candidate TX beam first runs the recorded §4.2
/// gain loop (so its `gain_ramp` span nests inside), then each headset
/// probe emits `reflect_probe` (`tx_deg`, `rx_deg`, `snr_db`); the
/// winner is announced as `reflection_chosen`.
pub fn estimate_reflection_recorded(
    scene: &Scene,
    ap: &RadioEndpoint,
    mut reflector: MovrReflector,
    headset: RadioEndpoint,
    sweep: &SweepParams<'_>,
    rng: &mut SimRng,
    cap: Capture<'_>,
) -> ReflectionResult {
    let SweepParams {
        tx_codebook,
        headset_codebook,
        config,
    } = *sweep;
    let Capture { start, rec } = cap;
    reflector.set_modulating(false);
    let span = if rec.enabled() {
        Some(rec.start_span(start, "reflection_sweep"))
    } else {
        None
    };
    let mut cursor = start;
    let mut best = (f64::NEG_INFINITY, 0.0, 0.0);
    let mut measurements = 0usize;
    let snr_sigma_db = 0.5;

    // Geometry is frozen for the sweep: trace both relay hops once and
    // freeze them into tap batches. The AP's and the reflector's RX
    // steering never change, so hop 1 — received power and front-end
    // SNR — is one loop invariant computed up front; the headset's whole
    // candidate page is batched against hop 2's arrival bearings once.
    // Per TX candidate only the reflector's TX gain row and the (gain-
    // controlled) amplifier setting vary.
    let hop1 = scene
        .trace_link(ap.position(), reflector.position())
        .batch()
        .with_noise(&relay_input_noise(scene));
    let hop2 = scene.trace_link(reflector.position(), headset.position()).batch();
    let hs_table = PatternTable::new(headset.array(), headset_codebook);
    let hs_page = hs_table.fill_page(hop2.arrival_deg());
    let ap_gains = ap.array().gain_dbi_batch(hop1.departure_deg());
    let rx_gains = reflector.rx_array().gain_dbi_batch(hop1.arrival_deg());
    let hop1_received_dbm = hop1.received_dbm(ap.tx_power_dbm(), &ap_gains, &rx_gains);
    let hop1_snr_db = hop1.snr_db(hop1_received_dbm);

    for &tx_deg in tx_codebook.beams() {
        reflector.steer_tx(tx_deg);
        cursor += config.beam_command_latency;
        // Each beam pair has its own leakage; re-run the §4.2 loop so the
        // candidate is evaluated at the gain it would actually be served
        // with.
        crate::gain_control::run_gain_control_recorded(
            &mut reflector,
            &crate::gain_control::GainControlConfig::default(),
            cursor,
            rec,
        );
        let relay_gain_db = reflector.effective_gain_db();
        let tx_gains = reflector.tx_array().gain_dbi_batch(hop2.departure_deg());
        for (j, (rx_deg, _)) in hs_table.entries().enumerate() {
            let end_snr_db = relay_end_snr_batched(
                hop1_received_dbm,
                hop1_snr_db,
                relay_gain_db,
                &hop2,
                &tx_gains,
                hs_page.row(j),
            );
            let reported = end_snr_db + rng.normal(0.0, snr_sigma_db);
            measurements += 1;
            cursor += config.dwell;
            if rec.enabled() {
                rec.record(
                    Event::new(cursor, "reflect_probe")
                        .with("tx_deg", tx_deg)
                        .with("rx_deg", rx_deg)
                        .with("snr_db", reported),
                );
            }
            if reported > best.0 {
                best = (reported, tx_deg, rx_deg);
            }
        }
    }

    let n1 = convert::usize_to_u64(tx_codebook.len());
    let n2 = convert::usize_to_u64(headset_codebook.len());
    let elapsed = SimTime::from_nanos(
        n1 * config.beam_command_latency.as_nanos() + n1 * n2 * config.dwell.as_nanos(),
    );
    debug_assert_eq!(start + elapsed, cursor, "cursor must mirror the cost model");

    if let Some(id) = span {
        rec.record(
            Event::new(cursor, "reflection_chosen")
                .with("tx_deg", best.1)
                .with("rx_deg", best.2)
                .with("peak_snr_db", best.0)
                .with("measurements", measurements),
        );
        rec.end_span(cursor, "reflection_sweep", id);
    }

    ReflectionResult {
        tx_angle_deg: best.1,
        headset_angle_deg: best.2,
        peak_snr_db: best.0,
        measurements,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use movr_math::Vec2;

    /// Shortest-arc angular difference, degrees.
    fn arc(a: f64, b: f64) -> f64 {
        movr_math::wrap_deg_180(a - b).abs()
    }

    fn setup() -> (Scene, RadioEndpoint, MovrReflector) {
        let scene = Scene::paper_office();
        let ap = RadioEndpoint::paper_radio(Vec2::new(0.5, 2.5), 20.0);
        let reflector = MovrReflector::wall_mounted(Vec2::new(1.0, 4.75), -70.0, 5);
        (scene, ap, reflector)
    }

    /// Coarse codebooks keep unit tests fast; the benches run the paper's
    /// full 1° sweeps. Truth bearings: reflector → AP ≈ −102.5°, AP →
    /// reflector ≈ 77.5°.
    fn coarse_config() -> AlignmentConfig {
        AlignmentConfig {
            ap_codebook: Codebook::sweep(47.0, 107.0, 3.0),
            reflector_codebook: Codebook::sweep(-132.0, -72.0, 3.0),
            ..Default::default()
        }
    }

    #[test]
    fn incidence_estimate_close_to_truth() {
        let (scene, ap, reflector) = setup();
        let truth_refl = reflector.position().bearing_deg_to(ap.position());
        let truth_ap = ap.position().bearing_deg_to(reflector.position());
        let mut rng = SimRng::seed_from_u64(1);
        let r = estimate_incidence(&scene, ap, reflector, &coarse_config(), &mut rng);
        assert!(
            arc(r.reflector_angle_deg, truth_refl) <= 3.0,
            "θ1 est {} truth {truth_refl}",
            r.reflector_angle_deg
        );
        assert!(
            arc(r.ap_angle_deg, truth_ap) <= 3.0,
            "θ2 est {} truth {truth_ap}",
            r.ap_angle_deg
        );
        assert_eq!(r.measurements, 21 * 21);
    }

    #[test]
    fn unmodulated_sweep_fails() {
        // Without modulation the AP's own leakage swamps the echo and the
        // argmax is noise — the estimate is effectively random, which is
        // exactly why §4.1 needs the f₂ modulation.
        let (scene, ap, reflector) = setup();
        let truth_refl = reflector.position().bearing_deg_to(ap.position());
        let cfg = AlignmentConfig {
            modulated: false,
            ..coarse_config()
        };
        // Across seeds, the unmodulated estimator must be wildly wrong at
        // least most of the time.
        let mut gross_errors = 0;
        for seed in 0..8 {
            let mut rng = SimRng::seed_from_u64(seed);
            let r = estimate_incidence(&scene, ap, reflector.clone(), &cfg, &mut rng);
            if arc(r.reflector_angle_deg, truth_refl) > 6.0 {
                gross_errors += 1;
            }
        }
        assert!(gross_errors >= 6, "only {gross_errors}/8 gross errors");
    }

    #[test]
    fn elapsed_accounts_for_sweep_size() {
        let (scene, ap, reflector) = setup();
        let cfg = coarse_config();
        let mut rng = SimRng::seed_from_u64(2);
        let r = estimate_incidence(&scene, ap, reflector, &cfg, &mut rng);
        let expect = SimTime::from_nanos(
            21 * cfg.beam_command_latency.as_nanos() + 21 * 21 * cfg.dwell.as_nanos(),
        );
        assert_eq!(r.elapsed, expect);
    }

    #[test]
    fn reflection_estimate_finds_headset() {
        let (scene, mut ap, mut reflector) = setup();
        let hs_pos = Vec2::new(3.5, 1.0);
        let headset =
            RadioEndpoint::paper_radio(hs_pos, hs_pos.bearing_deg_to(reflector.position()));
        // Incidence already known: aim AP and reflector RX at each other.
        ap.steer_toward(reflector.position());
        reflector.steer_rx(reflector.position().bearing_deg_to(ap.position()));

        let truth_tx = reflector.position().bearing_deg_to(headset.position());
        let truth_hs = headset.position().bearing_deg_to(reflector.position());

        let tx_cb = Codebook::sweep(truth_tx - 30.0, truth_tx + 30.0, 3.0);
        let hs_cb = Codebook::sweep(truth_hs - 30.0, truth_hs + 30.0, 3.0);
        let mut rng = SimRng::seed_from_u64(3);
        let cfg = AlignmentConfig::default();
        let sweep = SweepParams {
            tx_codebook: &tx_cb,
            headset_codebook: &hs_cb,
            config: &cfg,
        };
        let r = estimate_reflection(&scene, &ap, reflector, headset, &sweep, &mut rng);
        assert!(
            arc(r.tx_angle_deg, truth_tx) <= 3.0,
            "tx est {} truth {truth_tx}",
            r.tx_angle_deg
        );
        assert!(
            arc(r.headset_angle_deg, truth_hs) <= 3.0,
            "hs est {} truth {truth_hs}",
            r.headset_angle_deg
        );
        assert!(r.peak_snr_db > 15.0);
    }

    #[test]
    fn hierarchical_matches_full_sweep_accuracy_far_cheaper() {
        let (scene, ap, reflector) = setup();
        let truth = reflector.position().bearing_deg_to(ap.position());
        let truth_ap = ap.position().bearing_deg_to(reflector.position());
        // A 1°-resolution config spanning ±20°.
        let cfg = AlignmentConfig {
            ap_codebook: Codebook::sweep(truth_ap - 20.0, truth_ap + 20.0, 1.0),
            reflector_codebook: Codebook::sweep(truth - 20.0, truth + 20.0, 1.0),
            ..Default::default()
        };
        let mut rng1 = SimRng::seed_from_u64(21);
        let full = estimate_incidence(&scene, ap, reflector.clone(), &cfg, &mut rng1);
        let mut rng2 = SimRng::seed_from_u64(21);
        let hier =
            estimate_incidence_hierarchical(&scene, ap, reflector, &cfg, 5.0, &mut rng2);

        assert!(arc(hier.reflector_angle_deg, truth) <= 2.0, "{}", hier.reflector_angle_deg);
        assert!(arc(hier.ap_angle_deg, truth_ap) <= 2.0);
        assert!(
            hier.measurements * 3 < full.measurements,
            "hier {} vs full {}",
            hier.measurements,
            full.measurements
        );
        assert!(hier.elapsed < full.elapsed);
    }

    #[test]
    fn recorded_sweep_timeline_matches_cost_model() {
        use movr_obs::MemoryRecorder;
        let (scene, ap, reflector) = setup();
        let cfg = coarse_config();
        let start = SimTime::from_millis(100);

        let mut rng_a = SimRng::seed_from_u64(4);
        let plain = estimate_incidence(&scene, ap, reflector.clone(), &cfg, &mut rng_a);

        let mut rng_b = SimRng::seed_from_u64(4);
        let mut rec = MemoryRecorder::new();
        let rich = estimate_incidence_recorded(
            &scene,
            ap,
            reflector,
            &cfg,
            &mut rng_b,
            Capture::new(start, &mut rec),
        );

        // Observability must not change the answer.
        assert_eq!(plain.reflector_angle_deg, rich.reflector_angle_deg);
        assert_eq!(plain.ap_angle_deg, rich.ap_angle_deg);
        assert_eq!(plain.peak_power_dbm, rich.peak_power_dbm);

        // One probe event per measurement, all inside the sweep span,
        // which covers exactly the cost model's elapsed time.
        assert_eq!(rec.of_kind("beam_probe").count(), rich.measurements);
        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        let (name, t0, t1) = spans[0];
        assert_eq!(name, "alignment_sweep");
        assert_eq!(t0, start);
        assert_eq!(t1, start + rich.elapsed);
        assert!(rec
            .of_kind("beam_probe")
            .all(|e| t0 < e.t && e.t <= t1), "probes inside the span");
        assert_eq!(rec.of_kind("alignment_chosen").count(), 1);
    }

    #[test]
    fn recorded_hierarchical_emits_two_back_to_back_sweeps() {
        use movr_obs::MemoryRecorder;
        let (scene, ap, reflector) = setup();
        let truth = reflector.position().bearing_deg_to(ap.position());
        let truth_ap = ap.position().bearing_deg_to(reflector.position());
        let cfg = AlignmentConfig {
            ap_codebook: Codebook::sweep(truth_ap - 20.0, truth_ap + 20.0, 1.0),
            reflector_codebook: Codebook::sweep(truth - 20.0, truth + 20.0, 1.0),
            ..Default::default()
        };
        let mut rng = SimRng::seed_from_u64(21);
        let mut rec = MemoryRecorder::new();
        let r = estimate_incidence_hierarchical_recorded(
            &scene,
            ap,
            reflector,
            &cfg,
            5.0,
            &mut rng,
            Capture::from_zero(&mut rec),
        );
        let spans = rec.spans();
        assert_eq!(spans.len(), 2, "coarse + fine stages");
        let (_, c0, c1) = spans[0];
        let (_, f0, f1) = spans[1];
        assert_eq!(c0, SimTime::ZERO);
        assert_eq!(f0, c1, "fine stage starts where coarse ends");
        assert_eq!(f1, r.elapsed, "total span covers the combined cost");
        assert_eq!(rec.of_kind("beam_probe").count(), r.measurements);
    }

    #[test]
    fn recorded_reflection_nests_gain_ramps() {
        use movr_obs::MemoryRecorder;
        let (scene, mut ap, mut reflector) = setup();
        let hs_pos = Vec2::new(3.5, 1.0);
        let headset =
            RadioEndpoint::paper_radio(hs_pos, hs_pos.bearing_deg_to(reflector.position()));
        ap.steer_toward(reflector.position());
        reflector.steer_rx(reflector.position().bearing_deg_to(ap.position()));
        let truth_tx = reflector.position().bearing_deg_to(headset.position());
        let truth_hs = headset.position().bearing_deg_to(reflector.position());
        let tx_cb = Codebook::sweep(truth_tx - 9.0, truth_tx + 9.0, 3.0);
        let hs_cb = Codebook::sweep(truth_hs - 9.0, truth_hs + 9.0, 3.0);
        let mut rng = SimRng::seed_from_u64(3);
        let mut rec = MemoryRecorder::new();
        let cfg = AlignmentConfig::default();
        let sweep = SweepParams {
            tx_codebook: &tx_cb,
            headset_codebook: &hs_cb,
            config: &cfg,
        };
        let r = estimate_reflection_recorded(
            &scene,
            &ap,
            reflector,
            headset,
            &sweep,
            &mut rng,
            Capture::from_zero(&mut rec),
        );
        assert_eq!(rec.of_kind("reflect_probe").count(), r.measurements);
        // One §4.2 gain ramp per candidate TX beam, inside the sweep.
        let spans = rec.spans();
        let ramps = spans.iter().filter(|s| s.0 == "gain_ramp").count();
        assert_eq!(ramps, tx_cb.len());
        assert_eq!(
            spans.iter().filter(|s| s.0 == "reflection_sweep").count(),
            1
        );
        assert_eq!(rec.of_kind("reflection_chosen").count(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let (scene, ap, reflector) = setup();
        let cfg = coarse_config();
        let mut r1 = SimRng::seed_from_u64(11);
        let mut r2 = SimRng::seed_from_u64(11);
        let a = estimate_incidence(&scene, ap, reflector.clone(), &cfg, &mut r1);
        let b = estimate_incidence(&scene, ap, reflector, &cfg, &mut r2);
        assert_eq!(a.reflector_angle_deg, b.reflector_angle_deg);
        assert_eq!(a.ap_angle_deg, b.ap_angle_deg);
        assert_eq!(a.peak_power_dbm, b.peak_power_dbm);
    }
}
