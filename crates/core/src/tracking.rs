//! Predictive beam tracking — the paper's §6 future work, implemented.
//!
//! "Our future work will focus on designing a fast beam-tracking
//! algorithm that leverages this [VR tracking] information."
//!
//! The control channel adds ~7.5 ms between deciding a beam and the
//! reflector applying it; a player walking at 1 m/s moves ~8 mm in that
//! time and a head turning at 200°/s moves 1.5° — enough to land a
//! freshly-commanded beam off-centre. [`BeamPredictor`] keeps a short
//! history of tracked poses, estimates linear and angular velocity, and
//! extrapolates the pose to the instant the command will take effect, so
//! the beam is aimed at where the player *will be*.

use movr_math::{wrap_deg_180, Vec2};
use movr_motion::TrackedPose;
use std::collections::VecDeque;

/// Short-horizon pose predictor fed by tracker observations.
#[derive(Debug, Clone)]
pub struct BeamPredictor {
    /// Observation history `(t_s, pose)`, newest last.
    history: VecDeque<(f64, TrackedPose)>,
    /// Maximum observations retained.
    depth: usize,
    /// Horizon beyond which extrapolation is clamped (predictions far
    /// past the data are worse than holding the last pose), seconds.
    max_horizon_s: f64,
}

impl Default for BeamPredictor {
    fn default() -> Self {
        BeamPredictor {
            history: VecDeque::new(),
            depth: 4,
            max_horizon_s: 0.05,
        }
    }
}

impl BeamPredictor {
    /// A predictor with the default depth and horizon.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one tracker observation. Out-of-order observations are
    /// ignored (the tracker is monotonic; a replay would corrupt the
    /// velocity estimate).
    pub fn observe(&mut self, t_s: f64, pose: TrackedPose) {
        if let Some(&(last_t, _)) = self.history.back() {
            if t_s <= last_t {
                return;
            }
        }
        self.history.push_back((t_s, pose));
        while self.history.len() > self.depth {
            self.history.pop_front();
        }
    }

    /// Number of observations held.
    pub fn observations(&self) -> usize {
        self.history.len()
    }

    /// The latest observed pose, if any.
    pub fn latest(&self) -> Option<TrackedPose> {
        self.history.back().map(|&(_, p)| p)
    }

    /// Estimated linear velocity (m/s) and yaw rate (deg/s) from the
    /// oldest-to-newest span of the history. `None` with fewer than two
    /// observations.
    pub fn velocity(&self) -> Option<(Vec2, f64)> {
        if self.history.len() < 2 {
            return None;
        }
        let &(t0, p0) = self.history.front().expect("len >= 2");
        let &(t1, p1) = self.history.back().expect("len >= 2");
        let dt = t1 - t0;
        if dt <= 1e-9 {
            return None;
        }
        let v = (p1.center - p0.center) / dt;
        let w = wrap_deg_180(p1.yaw_deg - p0.yaw_deg) / dt;
        Some((v, w))
    }

    /// Predicts the pose at `t_s` by linear extrapolation from the
    /// newest observation, clamped to the horizon. Falls back to the
    /// latest pose when velocity cannot be estimated. `None` when no
    /// observation has been fed yet.
    pub fn predict(&self, t_s: f64) -> Option<TrackedPose> {
        let &(t_last, last) = self.history.back()?;
        let Some((v, w)) = self.velocity() else {
            return Some(last);
        };
        let dt = (t_s - t_last).clamp(0.0, self.max_horizon_s);
        Some(TrackedPose {
            center: last.center + v * dt,
            yaw_deg: last.yaw_deg + w * dt,
        })
    }

    /// Predicted bearing (degrees) from `origin` to the receiver at
    /// `t_s` — what a reflector's transmit beam should be commanded to.
    pub fn predict_bearing_from(&self, origin: Vec2, t_s: f64) -> Option<f64> {
        self.predict(t_s)
            .map(|p| origin.bearing_deg_to(p.receiver_position()))
    }

    /// Clears the history (e.g. after a tracking dropout).
    pub fn reset(&mut self) {
        self.history.clear();
    }

    /// The retained observation history, oldest first, for checkpointing.
    /// Depth and horizon are construction parameters, not state.
    pub fn history(&self) -> Vec<(f64, TrackedPose)> {
        self.history.iter().copied().collect()
    }

    /// Restores the history captured by [`BeamPredictor::history`].
    /// Entries beyond the retention depth are dropped from the oldest
    /// end, exactly as [`BeamPredictor::observe`] would have retained.
    pub fn restore_history(&mut self, entries: Vec<(f64, TrackedPose)>) {
        self.history.clear();
        self.history.extend(entries);
        while self.history.len() > self.depth {
            self.history.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pose(x: f64, y: f64, yaw: f64) -> TrackedPose {
        TrackedPose {
            center: Vec2::new(x, y),
            yaw_deg: yaw,
        }
    }

    #[test]
    fn empty_predictor_has_nothing() {
        let p = BeamPredictor::new();
        assert!(p.predict(1.0).is_none());
        assert!(p.velocity().is_none());
        assert!(p.latest().is_none());
    }

    #[test]
    fn single_observation_predicts_itself() {
        let mut p = BeamPredictor::new();
        p.observe(0.0, pose(1.0, 2.0, 30.0));
        let pred = p.predict(0.02).unwrap();
        assert_eq!(pred.center, Vec2::new(1.0, 2.0));
        assert_eq!(pred.yaw_deg, 30.0);
    }

    #[test]
    fn constant_velocity_extrapolates() {
        let mut p = BeamPredictor::new();
        // Walking +x at 1 m/s, turning at 100°/s.
        for k in 0..4 {
            let t = k as f64 * 0.01;
            p.observe(t, pose(1.0 + t, 2.0, 10.0 + 100.0 * t));
        }
        let (v, w) = p.velocity().unwrap();
        assert!((v.x - 1.0).abs() < 1e-9);
        assert!((v.y - 0.0).abs() < 1e-9);
        assert!((w - 100.0).abs() < 1e-9);
        // Predict 10 ms past the last observation (t=0.03).
        let pred = p.predict(0.04).unwrap();
        assert!((pred.center.x - 1.04).abs() < 1e-9);
        assert!((pred.yaw_deg - 14.0).abs() < 1e-9);
    }

    #[test]
    fn horizon_clamps_wild_extrapolation() {
        let mut p = BeamPredictor::new();
        p.observe(0.0, pose(1.0, 2.0, 0.0));
        p.observe(0.01, pose(1.01, 2.0, 0.0)); // 1 m/s
        // Asking 10 s ahead only extrapolates the 50 ms horizon.
        let pred = p.predict(10.0).unwrap();
        assert!((pred.center.x - (1.01 + 0.05)).abs() < 1e-9);
    }

    #[test]
    fn yaw_wraps_correctly() {
        let mut p = BeamPredictor::new();
        p.observe(0.0, pose(0.0, 0.0, 179.0));
        p.observe(0.01, pose(0.0, 0.0, -179.0)); // +2° through the wrap
        let (_, w) = p.velocity().unwrap();
        assert!((w - 200.0).abs() < 1e-6, "w={w}");
    }

    #[test]
    fn out_of_order_observations_ignored() {
        let mut p = BeamPredictor::new();
        p.observe(0.02, pose(1.0, 0.0, 0.0));
        p.observe(0.01, pose(9.0, 9.0, 90.0)); // stale: dropped
        assert_eq!(p.observations(), 1);
        assert_eq!(p.latest().unwrap().center, Vec2::new(1.0, 0.0));
    }

    #[test]
    fn history_depth_bounded() {
        let mut p = BeamPredictor::new();
        for k in 0..20 {
            p.observe(k as f64 * 0.01, pose(k as f64, 0.0, 0.0));
        }
        assert_eq!(p.observations(), 4);
        // Velocity uses the retained window only (still 100 m/s here).
        let (v, _) = p.velocity().unwrap();
        assert!((v.x - 100.0).abs() < 1e-6);
    }

    #[test]
    fn predicted_bearing_leads_the_motion() {
        let mut p = BeamPredictor::new();
        // Player crossing in front of a reflector at the origin.
        p.observe(0.0, pose(2.0, -2.0, 90.0));
        p.observe(0.01, pose(2.0 + 0.02, -2.0, 90.0)); // 2 m/s in +x
        let origin = Vec2::ZERO;
        let now = p.predict_bearing_from(origin, 0.01).unwrap();
        let future = p.predict_bearing_from(origin, 0.05).unwrap();
        // Moving +x below the origin: the bearing (≈ -45°) rotates
        // toward -x ... i.e. decreases toward -90? No: receiver at
        // (2+,  -2+0.18). Moving +x makes atan2 less negative? Check
        // by magnitude: bearing angle should change in the direction of
        // motion.
        assert_ne!(now, future);
        let moved = wrap_deg_180(future - now);
        assert!(moved.abs() > 0.2, "prediction must lead: {moved}");
    }

    #[test]
    fn history_round_trip_restores_predictions() {
        let mut p = BeamPredictor::new();
        for k in 0..4 {
            let t = k as f64 * 0.01;
            p.observe(t, pose(1.0 + t, 2.0, 10.0 + 100.0 * t));
        }
        let mut q = BeamPredictor::new();
        q.restore_history(p.history());
        assert_eq!(q.observations(), p.observations());
        assert_eq!(q.velocity(), p.velocity());
        let a = p.predict(0.05).unwrap();
        let b = q.predict(0.05).unwrap();
        assert_eq!(a.center, b.center);
        assert_eq!(a.yaw_deg, b.yaw_deg);
        // Over-deep restore input is trimmed from the oldest end.
        let mut long: Vec<_> = (0..9).map(|k| (k as f64, pose(k as f64, 0.0, 0.0))).collect();
        let mut r = BeamPredictor::new();
        r.restore_history(std::mem::take(&mut long));
        assert_eq!(r.observations(), 4);
        assert_eq!(r.latest().unwrap().center, Vec2::new(8.0, 0.0));
    }

    #[test]
    fn reset_clears() {
        let mut p = BeamPredictor::new();
        p.observe(0.0, pose(1.0, 1.0, 0.0));
        p.reset();
        assert!(p.predict(1.0).is_none());
    }
}
