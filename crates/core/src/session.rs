//! End-to-end VR sessions.
//!
//! Drives a motion trace through the link manager at the display's 90 Hz
//! frame cadence and accounts every frame: did it arrive within the
//! motion-to-photon budget, given the link's instantaneous rate and any
//! beam-realignment stall in progress? The output is the player-facing
//! quality the paper argues MoVR delivers and the baselines do not.
//!
//! The loop is exposed two ways: the one-shot [`run_session`] family, and
//! the stepwise [`Session`], which advances one frame per call and keeps
//! *all* mutable state in a [`SessionState`] — the unit the checkpoint
//! codec ([`crate::snapshot::Snapshot`]) serialises, so a session can be
//! cut at any frame boundary, round-tripped through bytes, and resumed
//! bit-identically.

use crate::system::{LinkMode, MovrSystem, SystemConfig};
use movr_math::SimRng;
use movr_motion::MotionTrace;
use movr_obs::{Event, Histogram, MetricsRegistry, MetricsSnapshot, NullRecorder, Recorder};
use movr_radio::{
    BadMcsIndex, FrameConfig, Hysteresis, McsEntry, Oracle, PerModel, RateAdapter,
    SnrThreshold,
};
use movr_sim::{EventQueue, SimTime};
use movr_vr::{GlitchReport, GlitchTracker, LatencyBudget, VrTrafficModel};

/// How the session is linked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// HDMI cable: every frame arrives (the tethered reference).
    Tethered,
    /// mmWave direct path only, beams always mutually aimed — what a
    /// WHDI-class link with perfect steering but no reflector achieves.
    DirectOnly,
    /// The full MoVR system; `tracking` selects §6's fast realignment.
    Movr {
        /// Enable §6 fast realignment from headset pose tracking.
        tracking: bool,
    },
}

/// How the transmitter picks its MCS from SNR reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RatePolicy {
    /// Exact lookup on the true SNR (idealised upper bound).
    Oracle,
    /// Highest decodable MCS from a noisy report, minus a backoff.
    Threshold {
        /// Backoff subtracted from the reported SNR, dB.
        backoff_db: f64,
    },
    /// Threshold with upgrade hysteresis (downgrades immediate).
    HysteresisPolicy {
        /// Extra SNR margin required before upgrading, dB.
        up_margin_db: f64,
        /// Consecutive qualifying reports required before upgrading.
        up_count: usize,
        /// Backoff subtracted from the reported SNR, dB.
        backoff_db: f64,
    },
}

/// Session parameters.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Which link strategy the session runs (§3 baselines or MoVR).
    pub strategy: Strategy,
    /// VR traffic generator parameters.
    pub traffic: VrTrafficModel,
    /// Motion-to-photon latency budget.
    pub latency: LatencyBudget,
    /// Physical-layer system parameters.
    pub system: SystemConfig,
    /// MCS selection policy.
    pub rate_policy: RatePolicy,
    /// 802.11ad PPDU framing used for airtime accounting.
    pub framing: FrameConfig,
    /// RMS noise on the SNR reports fed to non-oracle policies, dB.
    pub snr_report_sigma_db: f64,
}

impl SessionConfig {
    /// A session with the given strategy and all defaults (oracle rate
    /// selection, standard framing).
    pub fn with_strategy(strategy: Strategy) -> Self {
        let mut system = SystemConfig::default();
        if let Strategy::Movr { tracking } = strategy {
            system.use_tracking = tracking;
        }
        SessionConfig {
            strategy,
            traffic: VrTrafficModel::vive(),
            latency: LatencyBudget::default(),
            system,
            rate_policy: RatePolicy::Oracle,
            framing: FrameConfig::default(),
            snr_report_sigma_db: 0.5,
        }
    }
}

/// Runtime instantiation of a [`RatePolicy`].
pub(crate) enum AdapterImpl {
    Oracle(Oracle),
    Threshold(SnrThreshold),
    Hysteresis(Hysteresis),
}

impl AdapterImpl {
    pub(crate) fn new(policy: RatePolicy) -> Self {
        match policy {
            RatePolicy::Oracle => AdapterImpl::Oracle(Oracle::default()),
            RatePolicy::Threshold { backoff_db } => {
                AdapterImpl::Threshold(SnrThreshold::new(backoff_db))
            }
            RatePolicy::HysteresisPolicy {
                up_margin_db,
                up_count,
                backoff_db,
            } => AdapterImpl::Hysteresis(Hysteresis::new(up_margin_db, up_count, backoff_db)),
        }
    }

    fn select(
        &mut self,
        now: SimTime,
        report_db: f64,
        rec: &mut dyn Recorder,
    ) -> Option<&'static McsEntry> {
        match self {
            AdapterImpl::Oracle(a) => a.on_snr_report_recorded(now, report_db, rec),
            AdapterImpl::Threshold(a) => a.on_snr_report_recorded(now, report_db, rec),
            AdapterImpl::Hysteresis(a) => a.on_snr_report_recorded(now, report_db, rec),
        }
    }

    fn current_index(&self) -> Option<usize> {
        match self {
            AdapterImpl::Oracle(a) => a.current().map(|m| m.index),
            AdapterImpl::Threshold(a) => a.current().map(|m| m.index),
            AdapterImpl::Hysteresis(a) => a.current().map(|m| m.index),
        }
    }

    /// The adapter's whole mutable state: `(current MCS index, hysteresis
    /// up-streak)`. The streak is zero for streak-free policies.
    pub(crate) fn state(&self) -> (Option<usize>, usize) {
        match self {
            AdapterImpl::Oracle(a) => (a.current_index(), 0),
            AdapterImpl::Threshold(a) => (a.current_index(), 0),
            AdapterImpl::Hysteresis(a) => (a.current_index(), a.up_streak()),
        }
    }

    /// Restores an [`AdapterImpl::state`] capture. Errors on an MCS index
    /// outside the rate table (snapshot bytes are external input).
    pub(crate) fn restore_state(
        &mut self,
        current: Option<usize>,
        up_streak: usize,
    ) -> Result<(), BadMcsIndex> {
        match self {
            AdapterImpl::Oracle(a) => a.restore_current(current),
            AdapterImpl::Threshold(a) => a.restore_current(current),
            AdapterImpl::Hysteresis(a) => a.restore_state(current, up_streak),
        }
    }
}

/// What a session produced.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Session length, seconds.
    pub duration_s: f64,
    /// Frame-delivery accounting.
    pub glitches: GlitchReport,
    /// Mean link SNR across frames, dB.
    pub mean_snr_db: f64,
    /// Worst frame SNR, dB.
    pub min_snr_db: f64,
    /// Mode switches (direct ↔ reflector).
    pub mode_switches: usize,
    /// Realignment events.
    pub realignments: usize,
    /// Fraction of frames served via a reflector.
    pub reflector_fraction: f64,
    /// Structured session metrics: counters (`frames_*`, `mode_switches`,
    /// `rate_up`, ...) and histograms (`frame_snr_db`, `frame_airtime_ns`,
    /// `realign_stall_ns`). Always populated — the registry is part of
    /// the session's accounting, independent of any event recorder.
    pub metrics: MetricsSnapshot,
}

impl SessionOutcome {
    /// Grades the session with the default QoE model.
    pub fn grade(&self) -> movr_vr::QualityGrade {
        movr_vr::QualityModel::default().grade(&self.glitches, self.duration_s)
    }
}

/// The per-frame event driving the session loop.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SessionEvent {
    Frame,
}

/// Every piece of mid-session mutable state, in one struct. This is the
/// exact unit the checkpoint codec serialises: anything the frame loop
/// reads *and* writes lives here, while [`SessionConfig`] (and the
/// deployment's calibration/geometry) are construction inputs that a
/// restore target must supply identically. Fields are crate-private; the
/// public surface is [`Session`] plus [`crate::snapshot::Snapshot`].
pub struct SessionState {
    pub(crate) system: MovrSystem,
    pub(crate) adapter: AdapterImpl,
    pub(crate) report_rng: SimRng,
    pub(crate) glitches: GlitchTracker,
    pub(crate) snr_sum: f64,
    pub(crate) snr_min: f64,
    pub(crate) frames: usize,
    pub(crate) mode_switches: usize,
    pub(crate) realignments: usize,
    pub(crate) reflector_frames: usize,
    pub(crate) last_mode: Option<LinkMode>,
    /// The link is unusable until this instant while a sweep is running.
    pub(crate) blocked_until: SimTime,
    pub(crate) metrics: MetricsRegistry,
    pub(crate) queue: EventQueue<SessionEvent>,
}

fn snr_hist(m: &mut MetricsRegistry) -> &mut Histogram {
    m.histogram("frame_snr_db", || Histogram::linear(-10.0, 50.0, 60))
}
fn airtime_hist(m: &mut MetricsRegistry) -> &mut Histogram {
    m.histogram("frame_airtime_ns", || Histogram::log_spaced(1e5, 1e8, 30))
}
fn stall_hist(m: &mut MetricsRegistry) -> &mut Histogram {
    m.histogram("realign_stall_ns", || Histogram::log_spaced(1e6, 1e10, 24))
}

/// A stepwise VR session: the frame loop of [`run_session`] opened up at
/// the frame boundary. Each [`Session::step_frame`] call processes
/// exactly one frame event; between calls the session is a plain value
/// that can be checkpointed with [`Session::snapshot`] and later resumed
/// with [`Session::restore`], continuing bit-identically — same RNG
/// draws, same metrics, same recorded timeline.
pub struct Session {
    config: SessionConfig,
    state: SessionState,
}

impl Session {
    /// A session over the canonical single-reflector deployment.
    pub fn new(config: &SessionConfig) -> Self {
        Session::on_system(MovrSystem::paper_setup(config.system), config)
    }

    /// A session over a caller-built deployment (see [`run_session_on`]).
    pub fn on_system(system: MovrSystem, config: &SessionConfig) -> Self {
        let mut queue: EventQueue<SessionEvent> = EventQueue::new();
        queue.schedule_at(SimTime::ZERO, SessionEvent::Frame);
        Session {
            config: *config,
            state: SessionState {
                system,
                adapter: AdapterImpl::new(config.rate_policy),
                report_rng: SimRng::seed_from_u64(config.system.seed ^ 0x5E55_1055),
                glitches: GlitchTracker::new(),
                snr_sum: 0.0,
                snr_min: f64::INFINITY,
                frames: 0,
                mode_switches: 0,
                realignments: 0,
                reflector_frames: 0,
                last_mode: None,
                blocked_until: SimTime::ZERO,
                metrics: MetricsRegistry::new(),
                queue,
            },
        }
    }

    /// Reassembles a session from decoded parts (checkpoint restore).
    pub(crate) fn from_parts(config: SessionConfig, state: SessionState) -> Self {
        Session { config, state }
    }

    /// The configuration the session runs under.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The session's mutable state (checkpoint capture).
    pub(crate) fn state(&self) -> &SessionState {
        &self.state
    }

    /// Frames processed so far.
    pub fn frames(&self) -> usize {
        self.state.frames
    }

    /// The session clock: the timestamp of the last processed event.
    pub fn now(&self) -> SimTime {
        self.state.queue.now()
    }

    /// Serialises the session's entire mutable state to the versioned
    /// snapshot format (see [`crate::snapshot`]).
    pub fn snapshot(&self) -> Vec<u8> {
        crate::snapshot::Snapshot::capture(self)
    }

    /// Restores a [`Session::snapshot`] onto the canonical deployment.
    /// `config` must fingerprint-match the capturing session's config.
    pub fn restore(
        bytes: &[u8],
        config: &SessionConfig,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        crate::snapshot::Snapshot::restore(bytes, config)
    }

    /// Restores a [`Session::snapshot`] onto a caller-built deployment
    /// (the [`run_session_on`] analogue — the system must match the one
    /// the capturing session ran on).
    pub fn restore_on(
        bytes: &[u8],
        system: MovrSystem,
        config: &SessionConfig,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        crate::snapshot::Snapshot::restore_on(bytes, system, config)
    }

    /// Processes the next frame event, if one is due within the trace's
    /// duration. Returns `false` when the session is over.
    pub fn step_frame(&mut self, trace: &dyn MotionTrace) -> bool {
        self.step_frame_recorded(trace, &mut NullRecorder)
    }

    /// [`Session::step_frame`] with observability (the event vocabulary
    /// is documented on [`run_session_on_recorded`]).
    pub fn step_frame_recorded(
        &mut self,
        trace: &dyn MotionTrace,
        rec: &mut dyn Recorder,
    ) -> bool {
        let config = self.config;
        let st = &mut self.state;
        let end = SimTime::from_secs_f64(trace.duration_s());
        let Some((now, SessionEvent::Frame)) = st.queue.next_until(end) else {
            return false;
        };
        let per_model = PerModel::default();
        let t_s = now.as_secs_f64();
        let world = trace.world_at(t_s);
        st.frames += 1;
        st.metrics.inc("frames_total");

        let mut frame_mode: Option<LinkMode> = None;
        let snr_db = match config.strategy {
            Strategy::Tethered => f64::INFINITY,
            Strategy::DirectOnly => st.system.evaluate_direct(&world),
            Strategy::Movr { .. } => {
                let d = st.system.evaluate_at_recorded(t_s, &world, rec);
                if d.realigned {
                    st.realignments += 1;
                    st.metrics.inc("realignments");
                    let done = now + d.realignment_cost;
                    st.blocked_until = st.blocked_until.max(done);
                    if d.realignment_cost > SimTime::ZERO {
                        stall_hist(&mut st.metrics)
                            .observe(d.realignment_cost.as_nanos() as f64);
                    }
                    if rec.enabled() {
                        rec.record(
                            Event::new(now, "realign")
                                .with("mode", mode_name(d.mode))
                                .with("cost_ns", d.realignment_cost),
                        );
                        if d.realignment_cost > SimTime::ZERO {
                            let id = rec.start_span(now, "realign_stall");
                            rec.end_span(done, "realign_stall", id);
                        }
                    }
                }
                if st.last_mode != Some(d.mode) {
                    if st.last_mode.is_some() {
                        st.mode_switches += 1;
                        st.metrics.inc("mode_switches");
                    }
                    if rec.enabled() {
                        let mut e = Event::new(now, "mode_switch")
                            .with("to", mode_name(d.mode));
                        if let Some(prev) = st.last_mode {
                            e = e.with("from", mode_name(prev));
                        }
                        if let LinkMode::Reflector(i) = d.mode {
                            e = e.with("reflector", i as u64);
                        }
                        rec.record(e);
                    }
                    st.last_mode = Some(d.mode);
                }
                if matches!(d.mode, LinkMode::Reflector(_)) {
                    st.reflector_frames += 1;
                    st.metrics.inc("reflector_frames");
                }
                frame_mode = Some(d.mode);
                d.snr_db
            }
        };

        if snr_db.is_finite() {
            st.snr_sum += snr_db;
            st.snr_min = st.snr_min.min(snr_db);
        }
        snr_hist(&mut st.metrics).observe(snr_db);

        let rate_before = st.adapter.current_index();
        let mut frame_mcs: Option<&'static McsEntry> = None;
        let mut frame_airtime: Option<SimTime> = None;
        let delivered = if config.strategy == Strategy::Tethered {
            true
        } else {
            // The transmitter picks an MCS from its (possibly noisy) SNR
            // report; the frame then needs its PPDU burst — inflated by
            // the expected retransmissions at the true SNR's PER — to fit
            // the latency budget together with any realignment stall.
            let report = match config.rate_policy {
                RatePolicy::Oracle => snr_db,
                _ => snr_db + st.report_rng.normal(0.0, config.snr_report_sigma_db),
            };
            match st.adapter.select(now, report, rec) {
                None => false,
                Some(mcs) => {
                    frame_mcs = Some(mcs);
                    let per = per_model.per(mcs, snr_db).min(0.99);
                    let base = config
                        .framing
                        .burst_airtime(mcs, config.traffic.frame_bits as u64);
                    let airtime =
                        SimTime::from_secs_f64(base.as_secs_f64() / (1.0 - per));
                    frame_airtime = Some(airtime);
                    airtime_hist(&mut st.metrics).observe(airtime.as_nanos() as f64);
                    let stall = st.blocked_until.saturating_since(now);
                    config.latency.meets_deadline(airtime, stall)
                }
            }
        };
        match (rate_before, st.adapter.current_index()) {
            (Some(b), Some(a)) if a > b => st.metrics.inc("rate_up"),
            (Some(b), Some(a)) if a < b => st.metrics.inc("rate_down"),
            (Some(_), None) => st.metrics.inc("rate_outage"),
            _ => {}
        }
        st.metrics.inc(if delivered {
            "frames_delivered"
        } else {
            "frames_missed"
        });
        let stall_before = st.glitches.current_stall_frames();
        st.glitches.record(delivered);
        if rec.enabled() {
            if delivered && stall_before > 0 {
                rec.record(
                    Event::new(now, "stall_recovered").with("stall_frames", stall_before),
                );
            }
            let mut e = Event::new(now, "frame")
                .with("delivered", delivered)
                .with("snr_db", snr_db)
                .with("stall_ns", st.blocked_until.saturating_since(now));
            if let Some(mcs) = frame_mcs {
                e = e.with("mcs", mcs.index as u64);
            }
            if let Some(airtime) = frame_airtime {
                e = e.with("airtime_ns", airtime);
            }
            if let Some(mode) = frame_mode {
                e = e.with("mode", mode_name(mode));
                if let LinkMode::Reflector(i) = mode {
                    e = e.with("reflector", i as u64);
                }
            }
            rec.record(e);
        }

        st.queue
            .schedule_in(config.traffic.frame_interval(), SessionEvent::Frame);
        true
    }

    /// The session's accounting so far, graded against `duration_s`
    /// (callers pass the trace duration; a finished session's outcome is
    /// what [`run_session`] returns).
    pub fn outcome(&self, duration_s: f64) -> SessionOutcome {
        let st = &self.state;
        SessionOutcome {
            duration_s,
            glitches: st.glitches.report(),
            mean_snr_db: if st.frames > 0 && st.snr_sum.is_finite() {
                st.snr_sum / st.frames as f64
            } else {
                f64::INFINITY
            },
            min_snr_db: st.snr_min,
            mode_switches: st.mode_switches,
            realignments: st.realignments,
            reflector_fraction: if st.frames == 0 {
                0.0
            } else {
                st.reflector_frames as f64 / st.frames as f64
            },
            metrics: st.metrics.snapshot(),
        }
    }
}

/// Runs a session over `trace` under `config`, using the canonical
/// single-reflector deployment.
pub fn run_session(trace: &dyn MotionTrace, config: &SessionConfig) -> SessionOutcome {
    run_session_on(MovrSystem::paper_setup(config.system), trace, config)
}

/// [`run_session`] with a recorder attached (see
/// [`run_session_on_recorded`] for the event vocabulary).
pub fn run_session_recorded(
    trace: &dyn MotionTrace,
    config: &SessionConfig,
    rec: &mut dyn Recorder,
) -> SessionOutcome {
    run_session_on_recorded(MovrSystem::paper_setup(config.system), trace, config, rec)
}

/// Runs a session on a caller-built deployment — multi-reflector
/// layouts, L-shaped rooms, non-default calibration. The system should
/// have been built with `config.system` (or equivalent) so its tracking
/// and realignment behaviour matches the session's accounting.
pub fn run_session_on(
    system: MovrSystem,
    trace: &dyn MotionTrace,
    config: &SessionConfig,
) -> SessionOutcome {
    run_session_on_recorded(system, trace, config, &mut NullRecorder)
}

/// Stable short name for a link mode, for event fields.
fn mode_name(mode: LinkMode) -> &'static str {
    match mode {
        LinkMode::Direct => "direct",
        LinkMode::Reflector(_) => "reflector",
    }
}

/// [`run_session_on`] with observability. Per frame it emits one `frame`
/// event (`delivered`, `snr_db`, `mcs` when transmitting, `stall_ns`,
/// `mode`/`reflector` for MoVR strategies); transitions add
/// `mode_switch`, `realign` (with a `realign_stall` span covering the
/// blocked interval), `stall_recovered` (with the run length the player
/// just sat through), and the rate-adaptation / gain-control events of
/// the layers underneath. The outcome — including the `metrics`
/// snapshot, which is collected whether or not events are recorded — is
/// bit-identical under any recorder: observation never draws RNG.
pub fn run_session_on_recorded(
    system: MovrSystem,
    trace: &dyn MotionTrace,
    config: &SessionConfig,
    rec: &mut dyn Recorder,
) -> SessionOutcome {
    let mut session = Session::on_system(system, config);
    while session.step_frame_recorded(trace, rec) {}
    session.outcome(trace.duration_s())
}

#[cfg(test)]
mod tests {
    use super::*;
    use movr_math::Vec2;
    use movr_motion::{HandRaise, PlayerState, StaticScene};

    fn facing_ap() -> PlayerState {
        let center = Vec2::new(4.0, 2.5);
        let yaw = center.bearing_deg_to(Vec2::new(0.5, 2.5));
        PlayerState::standing(center, yaw)
    }

    #[test]
    fn tethered_session_is_perfect() {
        let trace = StaticScene::new(facing_ap(), 2.0);
        let out = run_session(&trace, &SessionConfig::with_strategy(Strategy::Tethered));
        assert_eq!(out.glitches.loss_rate, 0.0);
        assert!(out.glitches.frames_total > 170);
    }

    #[test]
    fn clear_static_direct_session_is_clean() {
        let trace = StaticScene::new(facing_ap(), 2.0);
        let out = run_session(&trace, &SessionConfig::with_strategy(Strategy::DirectOnly));
        assert_eq!(out.glitches.loss_rate, 0.0, "mean snr {}", out.mean_snr_db);
    }

    #[test]
    fn hand_raise_glitches_direct_but_not_movr() {
        let trace = HandRaise {
            base: facing_ap(),
            raise_at_s: 1.0,
            lower_at_s: 3.0,
            duration_s: 4.0,
        };
        let direct = run_session(&trace, &SessionConfig::with_strategy(Strategy::DirectOnly));
        let movr = run_session(
            &trace,
            &SessionConfig::with_strategy(Strategy::Movr { tracking: true }),
        );
        // Direct loses the entire 2 s of blockage (~50% of frames).
        assert!(
            direct.glitches.loss_rate > 0.4,
            "direct loss {}",
            direct.glitches.loss_rate
        );
        // MoVR rides the reflector through it.
        assert!(
            movr.glitches.loss_rate < 0.05,
            "movr loss {}",
            movr.glitches.loss_rate
        );
        assert!(movr.reflector_fraction > 0.3);
        assert!(movr.mode_switches >= 1);
    }

    #[test]
    fn tracking_beats_sweeping_on_stalls() {
        let trace = HandRaise {
            base: facing_ap(),
            raise_at_s: 1.0,
            lower_at_s: 3.0,
            duration_s: 4.0,
        };
        let tracked = run_session(
            &trace,
            &SessionConfig::with_strategy(Strategy::Movr { tracking: true }),
        );
        let swept = run_session(
            &trace,
            &SessionConfig::with_strategy(Strategy::Movr { tracking: false }),
        );
        assert!(
            tracked.glitches.longest_stall_frames <= swept.glitches.longest_stall_frames,
            "tracked stall {} vs swept {}",
            tracked.glitches.longest_stall_frames,
            swept.glitches.longest_stall_frames
        );
        assert!(tracked.glitches.loss_rate <= swept.glitches.loss_rate + 1e-9);
    }

    #[test]
    fn session_grading() {
        // Tethered is indistinguishable from a cable; direct-only through
        // a long blockage is at best poor.
        let trace = HandRaise {
            base: facing_ap(),
            raise_at_s: 1.0,
            lower_at_s: 3.0,
            duration_s: 4.0,
        };
        let tethered = run_session(&trace, &SessionConfig::with_strategy(Strategy::Tethered));
        assert_eq!(tethered.grade(), movr_vr::QualityGrade::Excellent);
        let direct = run_session(&trace, &SessionConfig::with_strategy(Strategy::DirectOnly));
        assert!(direct.grade() <= movr_vr::QualityGrade::Poor, "{:?}", direct.grade());
        // MoVR drops ~a frame per failover; in a short window with two
        // transitions that honestly grades Fair — still far above the
        // direct path's experience.
        let movr = run_session(
            &trace,
            &SessionConfig::with_strategy(Strategy::Movr { tracking: true }),
        );
        assert!(movr.grade() >= movr_vr::QualityGrade::Fair, "{:?}", movr.grade());
        assert!(movr.grade() > direct.grade());
    }

    #[test]
    fn rate_policies_rank_sensibly() {
        // On a clear static link, the oracle and a mild hysteresis policy
        // both deliver everything; an over-conservative backoff can cost
        // frames (it may pick an MCS too slow for the frame interval).
        let trace = StaticScene::new(facing_ap(), 2.0);
        let mut oracle = SessionConfig::with_strategy(Strategy::DirectOnly);
        oracle.rate_policy = RatePolicy::Oracle;
        let mut hyst = oracle;
        hyst.rate_policy = RatePolicy::HysteresisPolicy {
            up_margin_db: 1.0,
            up_count: 3,
            backoff_db: 0.5,
        };
        let mut timid = oracle;
        timid.rate_policy = RatePolicy::Threshold { backoff_db: 8.0 };

        let o = run_session(&trace, &oracle).glitches.loss_rate;
        let h = run_session(&trace, &hyst).glitches.loss_rate;
        let t = run_session(&trace, &timid).glitches.loss_rate;
        assert_eq!(o, 0.0);
        assert!(h <= o + 0.05, "hysteresis {h}");
        assert!(t >= h, "an 8 dB backoff can't beat a tuned policy");
    }

    #[test]
    fn noisy_reports_are_reproducible() {
        let trace = HandRaise {
            base: facing_ap(),
            raise_at_s: 0.5,
            lower_at_s: 1.0,
            duration_s: 2.0,
        };
        let mut cfg = SessionConfig::with_strategy(Strategy::Movr { tracking: true });
        cfg.rate_policy = RatePolicy::Threshold { backoff_db: 1.0 };
        let a = run_session(&trace, &cfg);
        let b = run_session(&trace, &cfg);
        assert_eq!(a.glitches, b.glitches);
    }

    #[test]
    fn framing_overhead_shifts_the_viability_edge() {
        // At MCS 12 (4.62 Gb/s) the 44.4 Mbit frame takes ~9.6 ms of
        // payload airtime plus framing overhead: it no longer fits the
        // 10 ms budget. The session's effective VR threshold is therefore
        // MCS 13+, slightly stricter than the bare ladder suggests.
        let cfg = SessionConfig::with_strategy(Strategy::DirectOnly);
        let table = movr_radio::RateTable;
        let mcs12 = &table.entries()[12];
        let mcs13 = &table.entries()[13];
        let bits = cfg.traffic.frame_bits as u64;
        let at12 = cfg.framing.burst_airtime(mcs12, bits);
        let at13 = cfg.framing.burst_airtime(mcs13, bits);
        assert!(!cfg.latency.meets_deadline(at12, movr_sim::SimTime::ZERO));
        assert!(cfg.latency.meets_deadline(at13, movr_sim::SimTime::ZERO));
    }

    #[test]
    fn metrics_snapshot_mirrors_outcome() {
        let trace = HandRaise {
            base: facing_ap(),
            raise_at_s: 1.0,
            lower_at_s: 3.0,
            duration_s: 4.0,
        };
        let out = run_session(
            &trace,
            &SessionConfig::with_strategy(Strategy::Movr { tracking: true }),
        );
        let m = &out.metrics;
        assert_eq!(
            m.counter("frames_total"),
            Some(out.glitches.frames_total as u64)
        );
        assert_eq!(
            m.counter("frames_delivered"),
            Some(out.glitches.frames_delivered as u64)
        );
        assert_eq!(
            m.counter("frames_missed"),
            Some((out.glitches.frames_total - out.glitches.frames_delivered) as u64)
        );
        assert_eq!(m.counter("mode_switches"), Some(out.mode_switches as u64));
        assert_eq!(m.counter("realignments"), Some(out.realignments as u64));
        let snr = m.histogram("frame_snr_db").expect("snr histogram");
        assert_eq!(snr.count(), out.glitches.frames_total as u64);
        assert!((snr.summary().mean() - out.mean_snr_db).abs() < 1e-9);
        assert_eq!(snr.summary().min(), out.min_snr_db);
    }

    #[test]
    fn recorded_session_timeline_is_consistent() {
        use movr_obs::{MemoryRecorder, Value};
        let trace = HandRaise {
            base: facing_ap(),
            raise_at_s: 1.0,
            lower_at_s: 3.0,
            duration_s: 4.0,
        };
        let cfg = SessionConfig::with_strategy(Strategy::Movr { tracking: true });
        let mut rec = MemoryRecorder::new();
        let out = run_session_recorded(&trace, &cfg, &mut rec);

        // One frame event per frame, flagged exactly like the report.
        assert_eq!(rec.of_kind("frame").count(), out.glitches.frames_total);
        let delivered = rec
            .of_kind("frame")
            .filter(|e| e.field("delivered") == Some(&Value::Bool(true)))
            .count();
        assert_eq!(delivered, out.glitches.frames_delivered);
        // Transitions match the counters.
        assert_eq!(rec.of_kind("mode_switch").count(), out.mode_switches + 1);
        assert_eq!(rec.of_kind("realign").count(), out.realignments);
        // Every glitch run that ended within the session announced its
        // recovery (a final unrecovered stall would not).
        assert!(rec.of_kind("stall_recovered").count() <= out.glitches.glitch_events);
        assert!(out.glitches.glitch_events > 0, "scenario must glitch");
        // Frame timestamps are monotonically increasing. (The full stream
        // is not sorted: a realign_stall span's end event is stamped at
        // the future unblock instant the moment the stall is known.)
        let ts: Vec<_> = rec.of_kind("frame").map(|e| e.t).collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn null_recorder_outcome_matches_plain_run() {
        use movr_obs::{MemoryRecorder, NullRecorder};
        let trace = HandRaise {
            base: facing_ap(),
            raise_at_s: 1.0,
            lower_at_s: 3.0,
            duration_s: 4.0,
        };
        let mut cfg = SessionConfig::with_strategy(Strategy::Movr { tracking: true });
        cfg.rate_policy = RatePolicy::Threshold { backoff_db: 1.0 };
        let plain = run_session(&trace, &cfg);
        let nulled = run_session_recorded(&trace, &cfg, &mut NullRecorder);
        let mut mem = MemoryRecorder::new();
        let memed = run_session_recorded(&trace, &cfg, &mut mem);
        // Observation must never perturb the simulation: all three runs
        // are bit-identical, down to the metrics serialization.
        assert_eq!(plain.glitches, nulled.glitches);
        assert_eq!(plain.glitches, memed.glitches);
        assert_eq!(plain.mean_snr_db, nulled.mean_snr_db);
        assert_eq!(plain.mean_snr_db, memed.mean_snr_db);
        assert_eq!(plain.min_snr_db, memed.min_snr_db);
        assert_eq!(plain.metrics.to_json(), nulled.metrics.to_json());
        assert_eq!(plain.metrics.to_json(), memed.metrics.to_json());
        assert!(!mem.is_empty());
    }

    #[test]
    fn outcome_bookkeeping_consistent() {
        let trace = StaticScene::new(facing_ap(), 1.0);
        let out = run_session(
            &trace,
            &SessionConfig::with_strategy(Strategy::Movr { tracking: true }),
        );
        let r = &out.glitches;
        assert_eq!(
            r.frames_total,
            r.frames_delivered + (r.loss_rate * r.frames_total as f64).round() as usize
        );
        assert!(out.reflector_fraction >= 0.0 && out.reflector_fraction <= 1.0);
        assert!(out.min_snr_db <= out.mean_snr_db);
    }

    #[test]
    fn stepwise_session_matches_one_shot_run() {
        // The Session step API is the same loop run_session uses — the
        // outcomes must be bit-identical, and intermediate outcomes must
        // be monotone in frames processed.
        let trace = HandRaise {
            base: facing_ap(),
            raise_at_s: 1.0,
            lower_at_s: 3.0,
            duration_s: 4.0,
        };
        let mut cfg = SessionConfig::with_strategy(Strategy::Movr { tracking: true });
        cfg.rate_policy = RatePolicy::Threshold { backoff_db: 1.0 };
        let one_shot = run_session(&trace, &cfg);

        let mut session = Session::new(&cfg);
        let mut stepped = 0usize;
        while session.step_frame(&trace) {
            stepped += 1;
            assert_eq!(session.frames(), stepped);
        }
        let out = session.outcome(trace.duration_s());
        assert_eq!(out.glitches, one_shot.glitches);
        assert_eq!(out.mean_snr_db.to_bits(), one_shot.mean_snr_db.to_bits());
        assert_eq!(out.min_snr_db.to_bits(), one_shot.min_snr_db.to_bits());
        assert_eq!(out.mode_switches, one_shot.mode_switches);
        assert_eq!(out.realignments, one_shot.realignments);
        assert_eq!(out.metrics.to_json(), one_shot.metrics.to_json());
        // Stepping past the end stays over.
        assert!(!session.step_frame(&trace));
        assert_eq!(session.frames(), stepped);
    }
}
