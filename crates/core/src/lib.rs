//! # MoVR — a programmable mmWave reflector for untethered VR
//!
//! Reproduction of *"Cutting the Cord in Virtual Reality"* (Abari,
//! Bharadia, Duffield, Katabi — HotNets-XV, 2016) as a simulation-backed
//! Rust library.
//!
//! High-quality VR headsets need multiple Gb/s inside a ~10 ms latency
//! budget — too much for WiFi, fine for 60 GHz-class mmWave, except that
//! mmWave beams die the moment the player's hand, head, or a bystander
//! blocks the line of sight. MoVR fixes this with a wall-mounted
//! *programmable mirror*: two phased arrays joined by a variable-gain
//! amplifier, no baseband chains at all, that catches the AP's beam and
//! re-launches it toward the headset from a different angle.
//!
//! This crate implements the paper's two algorithms and the system around
//! them:
//!
//! * [`reflector`] — the MoVR device itself.
//! * [`relay`] — physics of the AP → reflector → headset two-hop link,
//!   including amplifier saturation through the leakage feedback loop.
//! * [`alignment`] — §4.1's backscatter beam alignment: the reflector can
//!   neither transmit nor receive, so the AP sweeps both beams while the
//!   reflector on/off-modulates its amplifier at f₂, and a filter at
//!   f₁+f₂ separates the reflection from the AP's own leakage.
//! * [`gain_control`] — §4.2's current-sensing gain control: step the
//!   gain up while watching the amplifier's DC supply current and back
//!   off at the saturation knee, keeping `G_dB < L_dB` without ever
//!   measuring L.
//! * [`system`] — the full link manager: blockage detection from SNR
//!   reports, direct-vs-reflector switchover, and §6's tracking-assisted
//!   fast realignment.
//! * [`baselines`] — the comparison points of Figs. 3 and 9: static LOS
//!   (WHDI-like), and exhaustive-sweep best-NLOS.
//! * [`session`] — end-to-end VR sessions over a motion trace with
//!   frame-by-frame glitch accounting.
//!
//! ## Quick start
//!
//! ```
//! use movr::system::{MovrSystem, SystemConfig};
//! use movr_math::Vec2;
//!
//! // A 5m×5m office with a wall-mounted AP and one MoVR reflector, as
//! // in the paper's §5.2 experiments.
//! let mut sys = MovrSystem::paper_setup(SystemConfig::default());
//!
//! // Put the player in the play area, facing the AP, and evaluate.
//! use movr_motion::PlayerState;
//! let player = PlayerState::standing(Vec2::new(4.0, 2.5), 180.0);
//! let decision = sys.evaluate(&movr_motion::WorldState::player_only(player));
//! assert!(decision.snr_db > 15.0, "clear LOS should be VR-grade");
//! ```

pub mod alignment;
pub mod baselines;
pub mod gain_control;
pub mod install;
pub mod planning;
pub mod reflector;
pub mod relay;
pub mod session;
pub mod snapshot;
pub mod system;
pub mod tracking;

pub use alignment::{AlignmentConfig, AlignmentResult};
pub use gain_control::{GainControlConfig, GainControlResult};
pub use reflector::MovrReflector;
pub use relay::{
    relay_link, relay_link_on, relay_link_with, round_trip_reflection_dbm,
    round_trip_reflection_on, round_trip_reflection_with, RelayBudget,
};
pub use session::{
    run_session, run_session_on, run_session_on_recorded, run_session_recorded, RatePolicy,
    Session, SessionConfig, SessionOutcome, Strategy,
};
pub use snapshot::{config_fingerprint, Snapshot, SnapshotError, FORMAT_VERSION};
pub use system::{LinkDecision, LinkMode, MovrSystem, SystemConfig};
