//! TX→RX antenna leakage on the reflector.
//!
//! Some of the signal the reflector transmits couples straight back into
//! its own receive antenna. The paper measured this leakage across beam
//! angles (Fig. 7): for a fixed receive beam it swings by up to ~20 dB as
//! the transmit beam steers across 40°–140°, sitting between roughly
//! −50 dB and −80 dB, and the whole curve changes when the receive beam
//! moves. That variability is *why* gain control must be adaptive (§4.2).
//!
//! The surface here is a deterministic function of both beam angles plus a
//! per-device seed: a smooth multi-ripple structure (multipath coupling
//! between the two PCB arrays) on top of a proximity term that raises
//! coupling when the transmit beam steers toward the receive side.

use movr_math::SimRng;

/// Default leakage attenuation bounds, dB (positive). This is the
/// *antenna-to-antenna* coupling; the loop the amplifier sees adds the
/// phase-shifter insertion losses of both arrays (≈8 dB), which puts the
/// terminal-to-terminal measurement in Fig. 7's −50…−80 dB band.
const MIN_ATTENUATION_DB: f64 = 33.0;
const MAX_ATTENUATION_DB: f64 = 70.0;

/// An angle-dependent TX→RX leakage surface for one reflector device.
#[derive(Debug, Clone, Copy)]
pub struct LeakageSurface {
    /// Mean attenuation, dB.
    base_db: f64,
    /// Per-device ripple phases (radians).
    phase1: f64,
    phase2: f64,
    phase3: f64,
    /// Ripple amplitudes, dB.
    amp1: f64,
    amp2: f64,
    amp3: f64,
}

impl LeakageSurface {
    /// Creates the leakage surface for a device identified by `seed`.
    pub fn new(seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x4C45_414B); // "LEAK"
        LeakageSurface {
            base_db: 45.0 + rng.uniform(-2.0, 2.0),
            phase1: rng.phase(),
            phase2: rng.phase(),
            phase3: rng.phase(),
            amp1: 7.0 + rng.uniform(-1.0, 1.0),
            amp2: 5.0 + rng.uniform(-1.0, 1.0),
            amp3: 3.0 + rng.uniform(-0.5, 0.5),
        }
    }

    /// Leakage attenuation (positive dB) from the TX antenna steered to
    /// `tx_deg` into the RX antenna steered to `rx_deg`.
    ///
    /// The §4.2 stability criterion is `gain_db < attenuation_db`.
    pub fn attenuation_db(&self, tx_deg: f64, rx_deg: f64) -> f64 {
        // Slow and fast ripples across the TX sweep, each modulated by the
        // RX angle so the curve reshapes when the receive beam moves
        // (Fig. 7's two panels differ in structure, not just offset).
        let r1 = self.amp1 * (tx_deg / 8.0 + rx_deg / 23.0 + self.phase1).sin();
        let r2 = self.amp2 * (tx_deg / 3.6 + rx_deg / 11.0 + self.phase2).sin();
        let r3 = self.amp3 * ((tx_deg - rx_deg) / 15.0 + self.phase3).sin();
        // Proximity: steering the TX beam near the RX beam's direction
        // couples more strongly (lower attenuation).
        let d = (tx_deg - rx_deg) / 30.0;
        let proximity = -6.0 * (-d * d).exp();
        (self.base_db + r1 + r2 + r3 + proximity)
            .clamp(MIN_ATTENUATION_DB, MAX_ATTENUATION_DB)
    }

    /// Leakage expressed as a (negative) path gain in dB, as Fig. 7 plots
    /// it.
    pub fn gain_db(&self, tx_deg: f64, rx_deg: f64) -> f64 {
        -self.attenuation_db(tx_deg, rx_deg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use movr_math::angle::sweep_deg;

    #[test]
    fn attenuation_in_figure_range() {
        let s = LeakageSurface::new(1);
        for tx in sweep_deg(40.0, 140.0, 1.0) {
            for rx in [50.0, 65.0, 90.0, 120.0] {
                let a = s.attenuation_db(tx, rx);
                assert!((MIN_ATTENUATION_DB..=MAX_ATTENUATION_DB).contains(&a));
            }
        }
    }

    #[test]
    fn swing_across_tx_sweep_matches_fig7() {
        // Fig. 7: variation "as high as 20 dB" across the TX sweep.
        let s = LeakageSurface::new(2);
        for rx in [50.0, 65.0] {
            let vals: Vec<f64> = sweep_deg(40.0, 140.0, 1.0)
                .into_iter()
                .map(|tx| s.attenuation_db(tx, rx))
                .collect();
            let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
            let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert!(max - min >= 12.0, "rx={rx} swing={}", max - min);
            assert!(max - min <= 35.0);
        }
    }

    #[test]
    fn surface_depends_on_rx_angle() {
        let s = LeakageSurface::new(3);
        let diff: f64 = sweep_deg(40.0, 140.0, 5.0)
            .into_iter()
            .map(|tx| (s.attenuation_db(tx, 50.0) - s.attenuation_db(tx, 65.0)).abs())
            .sum();
        assert!(diff > 10.0, "changing the RX beam must reshape the curve");
    }

    #[test]
    fn deterministic_per_seed_distinct_across_seeds() {
        let a = LeakageSurface::new(10);
        let b = LeakageSurface::new(10);
        let c = LeakageSurface::new(11);
        assert_eq!(a.attenuation_db(90.0, 50.0), b.attenuation_db(90.0, 50.0));
        assert_ne!(a.attenuation_db(90.0, 50.0), c.attenuation_db(90.0, 50.0));
    }

    #[test]
    fn gain_is_negative_attenuation() {
        let s = LeakageSurface::new(4);
        assert_eq!(s.gain_db(77.0, 50.0), -s.attenuation_db(77.0, 50.0));
        assert!(s.gain_db(77.0, 50.0) < 0.0);
    }

    #[test]
    fn smooth_in_tx_angle() {
        // One-degree steps move the surface by at most a few dB — the
        // gain-control algorithm re-runs per beam change, not per jitter.
        let s = LeakageSurface::new(5);
        let vals: Vec<f64> = sweep_deg(40.0, 140.0, 1.0)
            .into_iter()
            .map(|tx| s.attenuation_db(tx, 65.0))
            .collect();
        for w in vals.windows(2) {
            assert!((w[1] - w[0]).abs() < 4.0);
        }
    }
}
