//! Control DAC (AD7228 class).
//!
//! The Arduino drives the attenuator and phase shifters through an 8-bit
//! DAC (§5). The DAC bounds how finely gain and phase can be commanded;
//! the gain-control algorithm's step size is ultimately one DAC code.

/// An n-bit voltage-output DAC.
#[derive(Debug, Clone, Copy)]
pub struct Dac {
    /// Resolution in bits.
    pub bits: u32,
    /// Output at code 0, volts.
    pub v_min: f64,
    /// Output at full-scale code, volts.
    pub v_max: f64,
}

impl Default for Dac {
    fn default() -> Self {
        // AD7228: 8-bit, here spanning 0–5 V.
        Dac {
            bits: 8,
            v_min: 0.0,
            v_max: 5.0,
        }
    }
}

impl Dac {
    /// Creates a DAC.
    ///
    /// # Panics
    /// Panics for 0 bits, more than 16 bits, or an inverted voltage range.
    pub fn new(bits: u32, v_min: f64, v_max: f64) -> Self {
        assert!((1..=16).contains(&bits), "bits must be in 1..=16");
        assert!(v_max > v_min, "voltage range inverted");
        Dac { bits, v_min, v_max }
    }

    /// Number of distinct codes.
    pub fn codes(&self) -> u32 {
        1u32 << self.bits
    }

    /// Full-scale code (all ones).
    pub fn max_code(&self) -> u32 {
        self.codes() - 1
    }

    /// Output voltage for a code (clamped to full scale).
    pub fn voltage(&self, code: u32) -> f64 {
        let c = code.min(self.max_code()) as f64;
        self.v_min + c / self.max_code() as f64 * (self.v_max - self.v_min)
    }

    /// The code whose output voltage is closest to `target_v`.
    pub fn code_for_voltage(&self, target_v: f64) -> u32 {
        let t = target_v.clamp(self.v_min, self.v_max);
        let frac = (t - self.v_min) / (self.v_max - self.v_min);
        (frac * self.max_code() as f64).round() as u32
    }

    /// Voltage step between adjacent codes (LSB size).
    pub fn lsb_v(&self) -> f64 {
        (self.v_max - self.v_min) / self.max_code() as f64
    }

    /// Quantises a requested voltage to the nearest reachable output.
    pub fn quantise(&self, target_v: f64) -> f64 {
        self.voltage(self.code_for_voltage(target_v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_8_bit() {
        let d = Dac::default();
        assert_eq!(d.codes(), 256);
        assert_eq!(d.max_code(), 255);
        assert!((d.lsb_v() - 5.0 / 255.0).abs() < 1e-12);
    }

    #[test]
    fn endpoints_exact() {
        let d = Dac::default();
        assert_eq!(d.voltage(0), 0.0);
        assert_eq!(d.voltage(255), 5.0);
        assert_eq!(d.voltage(999), 5.0); // clamped
    }

    #[test]
    fn code_voltage_roundtrip() {
        let d = Dac::default();
        for code in [0u32, 1, 17, 128, 254, 255] {
            assert_eq!(d.code_for_voltage(d.voltage(code)), code);
        }
    }

    #[test]
    fn quantisation_error_bounded_by_half_lsb() {
        let d = Dac::default();
        for i in 0..=100 {
            let v = i as f64 * 0.05;
            let q = d.quantise(v);
            assert!((q - v).abs() <= d.lsb_v() / 2.0 + 1e-12);
        }
    }

    #[test]
    fn out_of_range_targets_clamp() {
        let d = Dac::default();
        assert_eq!(d.code_for_voltage(-2.0), 0);
        assert_eq!(d.code_for_voltage(9.0), 255);
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn zero_bits_rejected() {
        Dac::new(0, 0.0, 5.0);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_rejected() {
        Dac::new(8, 5.0, 0.0);
    }
}
