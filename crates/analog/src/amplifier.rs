//! The reflector's variable-gain amplifier.
//!
//! The prototype builds its VGA from a Hittite HMC-C020 power amplifier, a
//! Quinstar QLW-2440 LNA and an HMC712 attenuator (§5). For the system's
//! purposes the chain is one device with:
//!
//! * a commandable gain `G` over a finite range,
//! * an on/off switch (the backscatter protocol modulates the amplifier
//!   at f₂ by toggling it),
//! * a *saturation* condition when the loop gain through the antenna
//!   leakage goes non-negative (`G_dB ≥ L_dB`), and
//! * a DC supply current that rises sharply as the device approaches
//!   saturation — the observable §4.2's gain-control algorithm monitors.
//!
//! The current curve follows the qualitative behaviour documented in PA
//! datasheets and the amplifier-design references the paper cites
//! [23, 27]: flat quiescent draw in normal operation, a steep knee within
//! the last couple of dB of margin, and a high clipped draw in saturation.

/// A variable-gain amplifier with saturation-aware supply-current model.
#[derive(Debug, Clone, Copy)]
pub struct VariableGainAmplifier {
    /// Minimum commandable gain, dB.
    pub min_gain_db: f64,
    /// Maximum commandable gain, dB.
    pub max_gain_db: f64,
    /// Quiescent supply current in normal operation, amperes.
    pub quiescent_current_a: f64,
    /// Supply current when saturated, amperes.
    pub saturated_current_a: f64,
    /// Loop margin (dB) at which the current knee is centred. With
    /// `margin = L_dB − G_dB`, the draw starts climbing when the margin
    /// shrinks below a few times this value.
    pub knee_margin_db: f64,
    /// Width of the knee transition, dB.
    pub knee_width_db: f64,
    gain_db: f64,
    enabled: bool,
}

impl Default for VariableGainAmplifier {
    fn default() -> Self {
        // The prototype's LNA + PA + attenuator chain. The ceiling reaches
        // into the lower part of the loop-leakage band (≈43–83 dB) so the
        // §4.2 knee binds for a meaningful share of beam pairs, while the
        // net relay gain stays modest enough that MoVR's SNR sits "a few
        // dB" above unblocked LOS (Fig. 9), not tens.
        VariableGainAmplifier {
            min_gain_db: 0.0,
            max_gain_db: 53.0,
            quiescent_current_a: 0.250,
            saturated_current_a: 0.520,
            knee_margin_db: 1.5,
            knee_width_db: 0.6,
            gain_db: 0.0,
            enabled: true,
        }
    }
}

impl VariableGainAmplifier {
    /// Creates a VGA with the given gain range and default currents.
    ///
    /// # Panics
    /// Panics if the range is inverted.
    pub fn with_range(min_gain_db: f64, max_gain_db: f64) -> Self {
        assert!(max_gain_db >= min_gain_db, "gain range inverted");
        VariableGainAmplifier {
            min_gain_db,
            max_gain_db,
            gain_db: min_gain_db,
            ..Default::default()
        }
    }

    /// Current commanded gain, dB (0 contribution when disabled).
    pub fn gain_db(&self) -> f64 {
        self.gain_db
    }

    /// Commands a gain, clamped to the device range; returns the applied
    /// value.
    pub fn set_gain_db(&mut self, gain_db: f64) -> f64 {
        self.gain_db = gain_db.clamp(self.min_gain_db, self.max_gain_db);
        self.gain_db
    }

    /// Whether the amplifier is powered (the backscatter modulator toggles
    /// this at f₂).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Powers the amplifier on or off.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// The *effective* forward gain, dB: `-inf` when off.
    pub fn effective_gain_db(&self) -> f64 {
        if self.enabled {
            self.gain_db
        } else {
            f64::NEG_INFINITY
        }
    }

    /// True if the amplifier is saturated given a leakage attenuation of
    /// `leakage_attenuation_db` (positive dB): the §4.2 stability criterion
    /// `G_dB − L_dB < 0` has been violated.
    pub fn is_saturated(&self, leakage_attenuation_db: f64) -> bool {
        self.enabled && self.gain_db >= leakage_attenuation_db
    }

    /// Loop margin `L_dB − G_dB`, dB. Positive = stable. `+inf` when off.
    pub fn loop_margin_db(&self, leakage_attenuation_db: f64) -> f64 {
        if self.enabled {
            leakage_attenuation_db - self.gain_db
        } else {
            f64::INFINITY
        }
    }

    /// Instantaneous DC supply current (amperes) for the present gain and
    /// the given leakage attenuation.
    ///
    /// The sigmoid knee keeps the curve smooth (real parts do not step),
    /// while concentrating the rise inside the last ~2 dB of margin so a
    /// step-and-watch algorithm sees a sudden jump — the §4.2 signature.
    pub fn supply_current_a(&self, leakage_attenuation_db: f64) -> f64 {
        if !self.enabled {
            return 0.0;
        }
        let margin = self.loop_margin_db(leakage_attenuation_db);
        let x = (self.knee_margin_db - margin) / self.knee_width_db;
        let sigmoid = 1.0 / (1.0 + (-x).exp());
        self.quiescent_current_a + (self.saturated_current_a - self.quiescent_current_a) * sigmoid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_clamps_to_range() {
        let mut a = VariableGainAmplifier::with_range(5.0, 30.0);
        assert_eq!(a.set_gain_db(50.0), 30.0);
        assert_eq!(a.set_gain_db(-10.0), 5.0);
        assert_eq!(a.set_gain_db(17.5), 17.5);
    }

    #[test]
    fn saturation_criterion_matches_paper() {
        let mut a = VariableGainAmplifier::default();
        a.set_gain_db(30.0);
        // G < L: stable.
        assert!(!a.is_saturated(35.0));
        // G == L: unstable boundary counts as saturated.
        assert!(a.is_saturated(30.0));
        // G > L: saturated.
        assert!(a.is_saturated(25.0));
    }

    #[test]
    fn disabled_amplifier_draws_nothing_and_cannot_saturate() {
        let mut a = VariableGainAmplifier::default();
        a.set_gain_db(40.0);
        a.set_enabled(false);
        assert_eq!(a.supply_current_a(20.0), 0.0);
        assert!(!a.is_saturated(20.0));
        assert_eq!(a.effective_gain_db(), f64::NEG_INFINITY);
        assert_eq!(a.loop_margin_db(20.0), f64::INFINITY);
    }

    #[test]
    fn current_is_quiescent_with_wide_margin() {
        let mut a = VariableGainAmplifier::default();
        a.set_gain_db(10.0);
        let i = a.supply_current_a(60.0); // 50 dB margin
        assert!((i - a.quiescent_current_a).abs() < 1e-3, "i={i}");
    }

    #[test]
    fn current_approaches_saturated_value_past_the_knee() {
        let mut a = VariableGainAmplifier::default();
        a.set_gain_db(40.0);
        let i = a.supply_current_a(35.0); // 5 dB *negative* margin
        assert!((i - a.saturated_current_a).abs() < 1e-3, "i={i}");
    }

    #[test]
    fn current_rises_monotonically_as_margin_shrinks() {
        let a = {
            let mut a = VariableGainAmplifier::default();
            a.set_gain_db(30.0);
            a
        };
        let mut prev = 0.0;
        // Sweep leakage from huge margin down to negative margin.
        for l in (25..=80).rev() {
            let i = a.supply_current_a(l as f64);
            assert!(i >= prev - 1e-12, "current must not fall as margin shrinks");
            prev = i;
        }
    }

    #[test]
    fn knee_is_sudden() {
        // The jump across the last 3 dB of margin dominates the total
        // rise — that's what makes threshold detection work.
        let mut a = VariableGainAmplifier::default();
        a.set_gain_db(30.0);
        let far = a.supply_current_a(40.0); // 10 dB margin
        let near = a.supply_current_a(33.0); // 3 dB margin
        let at = a.supply_current_a(30.5); // 0.5 dB margin
        let rise_early = near - far;
        let rise_late = at - near;
        assert!(rise_late > 4.0 * rise_early, "early={rise_early} late={rise_late}");
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_rejected() {
        VariableGainAmplifier::with_range(10.0, 5.0);
    }
}
