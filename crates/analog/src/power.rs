//! Reflector power budget.
//!
//! MoVR's cost pitch (§1) is that a reflector is *not* "a full-fledged
//! mmWave transceiver": no baseband chains means a parts list of an
//! amplifier, phase shifters, a DAC, a current sensor, a microcontroller
//! and a Bluetooth radio. This module adds up what that draws — which
//! answers a practical deployment question the paper leaves implicit:
//! can a reflector run from a battery, or does "stick them to the walls"
//! imply a wall wart?

use crate::amplifier::VariableGainAmplifier;

/// Static draws of the reflector's support electronics, amperes at the
/// supply rail.
#[derive(Debug, Clone, Copy)]
pub struct SupportDraw {
    /// Phase shifters (all elements, both arrays).
    pub phase_shifters_a: f64,
    /// Control DAC.
    pub dac_a: f64,
    /// Current sensor + misc analog.
    pub sensing_a: f64,
    /// Microcontroller (Arduino-class).
    pub mcu_a: f64,
    /// Bluetooth control radio (average).
    pub bluetooth_a: f64,
}

impl Default for SupportDraw {
    fn default() -> Self {
        SupportDraw {
            phase_shifters_a: 0.040,
            dac_a: 0.005,
            sensing_a: 0.003,
            mcu_a: 0.060,
            bluetooth_a: 0.010,
        }
    }
}

impl SupportDraw {
    /// Sum of the static draws, amperes.
    pub fn total_a(&self) -> f64 {
        self.phase_shifters_a + self.dac_a + self.sensing_a + self.mcu_a + self.bluetooth_a
    }
}

/// The whole reflector's power model.
#[derive(Debug, Clone, Copy)]
pub struct ReflectorPower {
    /// Fixed support-circuitry draw (phased arrays, control, sensing).
    pub support: SupportDraw,
    /// Supply voltage, volts.
    pub rail_v: f64,
}

impl Default for ReflectorPower {
    fn default() -> Self {
        ReflectorPower {
            support: SupportDraw::default(),
            rail_v: 5.0,
        }
    }
}

impl ReflectorPower {
    /// Instantaneous draw (amperes) given the amplifier's state and the
    /// current loop margin.
    pub fn total_draw_a(
        &self,
        amplifier: &VariableGainAmplifier,
        leakage_attenuation_db: f64,
    ) -> f64 {
        self.support.total_a() + amplifier.supply_current_a(leakage_attenuation_db)
    }

    /// Instantaneous power, watts.
    pub fn total_power_w(
        &self,
        amplifier: &VariableGainAmplifier,
        leakage_attenuation_db: f64,
    ) -> f64 {
        self.total_draw_a(amplifier, leakage_attenuation_db) * self.rail_v
    }

    /// Hours a pack of `capacity_mah` sustains the reflector at this
    /// operating point.
    pub fn battery_runtime_hours(
        &self,
        capacity_mah: f64,
        amplifier: &VariableGainAmplifier,
        leakage_attenuation_db: f64,
    ) -> f64 {
        capacity_mah / (self.total_draw_a(amplifier, leakage_attenuation_db) * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amp_at(gain_db: f64) -> VariableGainAmplifier {
        let mut a = VariableGainAmplifier::default();
        a.set_gain_db(gain_db);
        a
    }

    #[test]
    fn support_draw_is_modest() {
        let s = SupportDraw::default();
        assert!(s.total_a() < 0.15, "support should be ~100 mA class");
        assert!(s.total_a() > 0.05);
    }

    #[test]
    fn amplifier_dominates_when_serving() {
        let p = ReflectorPower::default();
        let amp = amp_at(40.0);
        let total = p.total_draw_a(&amp, 60.0);
        let amp_alone = amp.supply_current_a(60.0);
        assert!(amp_alone > p.support.total_a());
        assert!((total - amp_alone - p.support.total_a()).abs() < 1e-12);
    }

    #[test]
    fn disabled_amplifier_leaves_support_only() {
        let p = ReflectorPower::default();
        let mut amp = amp_at(40.0);
        amp.set_enabled(false);
        assert_eq!(p.total_draw_a(&amp, 60.0), p.support.total_a());
    }

    #[test]
    fn power_in_the_couple_watt_class() {
        // ~0.37 A at 5 V ≈ 1.8 W while serving: a wall wart, or a fat
        // power bank for a day.
        let p = ReflectorPower::default();
        let w = p.total_power_w(&amp_at(40.0), 60.0);
        assert!((1.0..3.5).contains(&w), "w={w}");
    }

    #[test]
    fn battery_runtime_arithmetic() {
        let p = ReflectorPower::default();
        let amp = amp_at(40.0);
        let h = p.battery_runtime_hours(10_000.0, &amp, 60.0);
        // ~10 Ah / ~0.37 A ≈ 27 h: a power-bank-per-day deployment is
        // feasible, but wall power is the sane default.
        assert!((20.0..40.0).contains(&h), "h={h}");
    }

    #[test]
    fn saturation_costs_power_too() {
        let p = ReflectorPower::default();
        let amp = amp_at(50.0);
        let healthy = p.total_power_w(&amp, 60.0);
        let saturated = p.total_power_w(&amp, 48.0);
        assert!(saturated > healthy + 0.5);
    }
}
