//! DC current sensing (INA169 class).
//!
//! The gain-control algorithm's only observable is the amplifier's supply
//! current, read through a high-side current sensor into the Arduino's
//! ADC (§4.2, §5). The sensor model adds what a real measurement has:
//! ADC quantisation and a little noise. The detection threshold in the
//! core algorithm must clear both.

use movr_math::SimRng;

/// A current sensor feeding an n-bit ADC.
#[derive(Debug, Clone)]
pub struct CurrentSensor {
    /// Full-scale measurable current, amperes.
    pub full_scale_a: f64,
    /// ADC resolution in bits.
    pub adc_bits: u32,
    /// RMS measurement noise, amperes.
    pub noise_rms_a: f64,
    rng: SimRng,
}

impl CurrentSensor {
    /// Creates a sensor. The Arduino Due's ADC is 12-bit; a 1 A full scale
    /// and ~1 mA of noise are representative of an INA169 + shunt setup.
    pub fn new(seed: u64) -> Self {
        CurrentSensor {
            full_scale_a: 1.0,
            adc_bits: 12,
            noise_rms_a: 0.001,
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// An idealised sensor with no noise (for unit tests and oracles).
    pub fn ideal() -> Self {
        CurrentSensor {
            full_scale_a: 1.0,
            adc_bits: 16,
            noise_rms_a: 0.0,
            rng: SimRng::seed_from_u64(0),
        }
    }

    /// The noise stream's raw RNG state, for checkpointing.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restores the noise stream from a [`CurrentSensor::rng_state`]
    /// capture, so subsequent measurements draw the same noise sequence
    /// the uninterrupted sensor would have.
    pub fn restore_rng_state(&mut self, state: [u64; 4]) {
        self.rng = SimRng::from_state(state);
    }

    /// The smallest current step the ADC resolves, amperes.
    pub fn lsb_a(&self) -> f64 {
        self.full_scale_a / movr_math::convert::u64_to_f64((1u64 << self.adc_bits) - 1)
    }

    /// Measures a true current: adds noise, clamps to full scale,
    /// quantises to the ADC grid.
    pub fn measure_a(&mut self, true_current_a: f64) -> f64 {
        let noisy = true_current_a + self.rng.normal(0.0, self.noise_rms_a);
        let clamped = noisy.clamp(0.0, self.full_scale_a);
        let lsb = self.lsb_a();
        (clamped / lsb).round() * lsb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_sensor_is_exact_to_one_lsb() {
        let mut s = CurrentSensor::ideal();
        for i in [0.0, 0.1, 0.25, 0.333, 0.9] {
            let m = s.measure_a(i);
            assert!((m - i).abs() <= s.lsb_a() / 2.0 + 1e-12, "i={i} m={m}");
        }
    }

    #[test]
    fn clamps_to_range() {
        let mut s = CurrentSensor::ideal();
        assert_eq!(s.measure_a(-0.5), 0.0);
        assert_eq!(s.measure_a(5.0), s.full_scale_a);
    }

    #[test]
    fn noise_has_expected_scale() {
        let mut s = CurrentSensor::new(42);
        let n = 2000;
        let errs: Vec<f64> = (0..n).map(|_| s.measure_a(0.5) - 0.5).collect();
        let mean: f64 = errs.iter().sum::<f64>() / n as f64;
        let rms: f64 = (errs.iter().map(|e| e * e).sum::<f64>() / n as f64).sqrt();
        assert!(mean.abs() < 0.0005, "mean={mean}");
        // Quantisation adds a little on top of the 1 mA noise.
        assert!(rms > 0.0005 && rms < 0.002, "rms={rms}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = CurrentSensor::new(7);
        let mut b = CurrentSensor::new(7);
        for _ in 0..50 {
            assert_eq!(a.measure_a(0.3), b.measure_a(0.3));
        }
    }

    #[test]
    fn twelve_bit_lsb() {
        let s = CurrentSensor::new(0);
        assert!((s.lsb_a() - 1.0 / 4095.0).abs() < 1e-12);
    }
}
