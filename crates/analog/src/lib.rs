//! Analog front-end component models.
//!
//! MoVR's reflector is *analog only*: two phased arrays joined by a
//! variable-gain amplifier, a control DAC, and a DC current sensor — no
//! transmit or receive baseband chains (paper §4). Everything the gain
//! control algorithm can observe and actuate is modelled here:
//!
//! * [`amplifier`] — the PA/LNA/attenuator chain as one variable-gain
//!   amplifier with a saturation knee and the supply-current signature the
//!   paper's algorithm exploits: amplifiers "draw significantly higher
//!   current as they get close to saturation mode" (§4.2).
//! * [`attenuator`] — the HMC712-class voltage-variable attenuator.
//! * [`dac`] — the AD7228-class 8-bit control DAC.
//! * [`sensor`] — the INA169-class DC current sensor with quantisation
//!   and measurement noise.
//! * [`leakage`] — the TX→RX antenna leakage surface, which varies by
//!   ~20 dB with the beam angles (Fig. 7).
//! * [`feedback`] — closed-loop analysis of the amplify-leak-feedback
//!   loop: stable iff `G_dB − L_dB < 0`.

pub mod amplifier;
pub mod attenuator;
pub mod dac;
pub mod feedback;
pub mod leakage;
pub mod power;
pub mod sensor;

pub use amplifier::VariableGainAmplifier;
pub use attenuator::VoltageVariableAttenuator;
pub use dac::Dac;
pub use feedback::FeedbackLoop;
pub use leakage::LeakageSurface;
pub use power::{ReflectorPower, SupportDraw};
pub use sensor::CurrentSensor;
