//! Voltage-variable attenuator (HMC712LP3C class).
//!
//! The prototype realises "variable gain" by putting a voltage-controlled
//! attenuator between a fixed-gain LNA and PA (§5). The part maps a
//! control voltage to an attenuation over roughly a 30 dB range with a
//! monotone but non-linear curve; driving it from a DAC quantises the
//! reachable attenuations.

/// A voltage-variable attenuator.
#[derive(Debug, Clone, Copy)]
pub struct VoltageVariableAttenuator {
    /// Attenuation at minimum control voltage, dB (insertion loss).
    pub min_attenuation_db: f64,
    /// Attenuation at maximum control voltage, dB.
    pub max_attenuation_db: f64,
    /// Control voltage range, volts.
    pub v_min: f64,
    /// Control voltage range, volts.
    pub v_max: f64,
    /// Curve shaping exponent: 1.0 = linear in voltage; >1 compresses the
    /// low-voltage end, as the real part does.
    pub curve_exponent: f64,
}

impl Default for VoltageVariableAttenuator {
    fn default() -> Self {
        VoltageVariableAttenuator {
            min_attenuation_db: 2.0,
            max_attenuation_db: 32.0,
            v_min: 0.0,
            v_max: 5.0,
            curve_exponent: 1.4,
        }
    }
}

impl VoltageVariableAttenuator {
    /// Attenuation (dB) for a control voltage, clamped to the valid range.
    pub fn attenuation_db(&self, control_v: f64) -> f64 {
        let v = control_v.clamp(self.v_min, self.v_max);
        let frac = if self.v_max > self.v_min {
            (v - self.v_min) / (self.v_max - self.v_min)
        } else {
            0.0
        };
        let shaped = frac.powf(self.curve_exponent);
        self.min_attenuation_db + shaped * (self.max_attenuation_db - self.min_attenuation_db)
    }

    /// The control voltage that produces a target attenuation (inverse of
    /// [`Self::attenuation_db`]), clamped to the achievable range.
    pub fn control_for_attenuation(&self, target_db: f64) -> f64 {
        let t = target_db.clamp(self.min_attenuation_db, self.max_attenuation_db);
        let frac = (t - self.min_attenuation_db)
            / (self.max_attenuation_db - self.min_attenuation_db).max(1e-12);
        self.v_min + frac.powf(1.0 / self.curve_exponent) * (self.v_max - self.v_min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints() {
        let a = VoltageVariableAttenuator::default();
        assert_eq!(a.attenuation_db(0.0), 2.0);
        assert!((a.attenuation_db(5.0) - 32.0).abs() < 1e-9);
    }

    #[test]
    fn clamps_out_of_range_voltages() {
        let a = VoltageVariableAttenuator::default();
        assert_eq!(a.attenuation_db(-3.0), a.attenuation_db(0.0));
        assert_eq!(a.attenuation_db(12.0), a.attenuation_db(5.0));
    }

    #[test]
    fn monotone_in_voltage() {
        let a = VoltageVariableAttenuator::default();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=50 {
            let v = i as f64 * 0.1;
            let att = a.attenuation_db(v);
            assert!(att >= prev);
            prev = att;
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let a = VoltageVariableAttenuator::default();
        for target in [2.0, 5.0, 10.0, 20.0, 32.0] {
            let v = a.control_for_attenuation(target);
            assert!((a.attenuation_db(v) - target).abs() < 1e-9, "target={target}");
        }
    }

    #[test]
    fn inverse_clamps_unreachable_targets() {
        let a = VoltageVariableAttenuator::default();
        assert_eq!(a.control_for_attenuation(0.0), a.v_min);
        assert_eq!(a.control_for_attenuation(60.0), a.v_max);
    }

    #[test]
    fn curve_is_nonlinear() {
        let a = VoltageVariableAttenuator::default();
        let mid = a.attenuation_db(2.5);
        let linear_mid = (2.0 + 32.0) / 2.0;
        assert!((mid - linear_mid).abs() > 1.0, "curve should not be linear");
    }
}
