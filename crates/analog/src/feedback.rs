//! Feedback-loop analysis of the reflector's amplify-leak loop.
//!
//! Fig. 6 of the paper reduces the reflector to a signal-flow graph: the
//! input is amplified by `G` dB, attenuated by `L` dB through the antenna
//! leakage, and fed back to the input. Classical feedback theory [22, 25]
//! gives the stability criterion the whole gain-control design rests on:
//!
//! > the system is stable iff `G_dB − L_dB < 0`.
//!
//! For a stable loop the closed-loop gain exceeds the forward gain by the
//! regeneration factor `−20·log10(1 − β)` where `β = 10^{(G−L)/20}` is the
//! loop amplitude ratio; as `G → L` the regeneration diverges and the real
//! amplifier saturates.

use movr_math::db::{amplitude_to_db, db_to_amplitude};

/// A single-amplifier positive-feedback loop.
#[derive(Debug, Clone, Copy)]
pub struct FeedbackLoop {
    /// Forward amplifier gain, dB.
    pub gain_db: f64,
    /// Leakage attenuation, dB (positive).
    pub leakage_attenuation_db: f64,
}

impl FeedbackLoop {
    /// Creates a loop description.
    pub fn new(gain_db: f64, leakage_attenuation_db: f64) -> Self {
        FeedbackLoop {
            gain_db,
            leakage_attenuation_db,
        }
    }

    /// Loop amplitude ratio `β = 10^{(G−L)/20}`.
    pub fn loop_ratio(&self) -> f64 {
        db_to_amplitude(self.gain_db - self.leakage_attenuation_db)
    }

    /// The §4.2 criterion: stable iff `G_dB − L_dB < 0`.
    pub fn is_stable(&self) -> bool {
        self.gain_db < self.leakage_attenuation_db
    }

    /// Stability margin `L_dB − G_dB`, dB. Positive = stable.
    pub fn margin_db(&self) -> f64 {
        self.leakage_attenuation_db - self.gain_db
    }

    /// Closed-loop gain in dB: `Some(G − 20·log10(1 − β))` when stable,
    /// `None` when the loop is unstable (the amplifier saturates and the
    /// output is garbage, not a larger signal).
    pub fn closed_loop_gain_db(&self) -> Option<f64> {
        if !self.is_stable() {
            return None;
        }
        let beta = self.loop_ratio();
        Some(self.gain_db - amplitude_to_db(1.0 - beta))
    }

    /// Regeneration (closed-loop minus forward gain), dB. `None` when
    /// unstable.
    pub fn regeneration_db(&self) -> Option<f64> {
        self.closed_loop_gain_db().map(|c| c - self.gain_db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stability_boundary() {
        assert!(FeedbackLoop::new(29.9, 30.0).is_stable());
        assert!(!FeedbackLoop::new(30.0, 30.0).is_stable());
        assert!(!FeedbackLoop::new(35.0, 30.0).is_stable());
    }

    #[test]
    fn margin_sign_convention() {
        assert!(FeedbackLoop::new(20.0, 30.0).margin_db() > 0.0);
        assert!(FeedbackLoop::new(40.0, 30.0).margin_db() < 0.0);
        assert_eq!(FeedbackLoop::new(20.0, 30.0).margin_db(), 10.0);
    }

    #[test]
    fn unstable_loop_has_no_gain() {
        assert_eq!(FeedbackLoop::new(30.0, 30.0).closed_loop_gain_db(), None);
        assert_eq!(FeedbackLoop::new(50.0, 30.0).regeneration_db(), None);
    }

    #[test]
    fn deep_margin_means_negligible_regeneration() {
        // 40 dB margin: β = 0.01, regeneration ≈ 0.09 dB.
        let r = FeedbackLoop::new(10.0, 50.0).regeneration_db().unwrap();
        assert!(r > 0.0 && r < 0.1, "r={r}");
    }

    #[test]
    fn regeneration_diverges_at_the_boundary() {
        let near = FeedbackLoop::new(29.9, 30.0).regeneration_db().unwrap();
        let nearer = FeedbackLoop::new(29.99, 30.0).regeneration_db().unwrap();
        assert!(near > 18.0, "0.1 dB margin regenerates strongly: {near}");
        assert!(nearer > near);
    }

    #[test]
    fn closed_loop_gain_exceeds_forward_gain_when_stable() {
        for (g, l) in [(10.0, 40.0), (25.0, 30.0), (29.0, 30.0)] {
            let loop_ = FeedbackLoop::new(g, l);
            let closed = loop_.closed_loop_gain_db().unwrap();
            assert!(closed > g, "g={g} l={l} closed={closed}");
        }
    }

    #[test]
    fn loop_ratio_is_amplitude_convention() {
        let l = FeedbackLoop::new(20.0, 40.0);
        assert!((l.loop_ratio() - 0.1).abs() < 1e-12); // -20 dB → 0.1 amplitude
    }
}
