//! Battery life for a fully untethered headset (§6).
//!
//! Cutting the HDMI cable still leaves the USB power cable. The paper's
//! arithmetic: the HTC Vive draws at most 1500 mA, so a small 5200 mAh
//! pack "can run the headset for 4-5 hours" — at *typical* draw; at the
//! absolute maximum it is ~3.5 h. [`Battery`] reproduces that arithmetic
//! with a usable-capacity derating and supports the mmWave receiver's
//! extra draw.

/// Maximum current the HTC Vive headset draws, amperes (§6).
pub const VIVE_MAX_DRAW_A: f64 = 1.5;

/// Typical in-game draw of the headset, amperes (well under the max —
/// the display and electronics rarely peak together).
pub const VIVE_TYPICAL_DRAW_A: f64 = 1.1;

/// A rechargeable battery pack.
///
/// ```
/// use movr_vr::battery::{Battery, VIVE_TYPICAL_DRAW_A};
///
/// // §6's arithmetic: the 5200 mAh pack runs the headset 4-5 hours.
/// let pack = Battery::anker_5200();
/// let hours = pack.runtime_hours(VIVE_TYPICAL_DRAW_A);
/// assert!((4.0..5.0).contains(&hours));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Battery {
    /// Rated capacity, milliamp-hours.
    pub capacity_mah: f64,
    /// Fraction of the rated capacity actually deliverable.
    pub usable_fraction: f64,
}

impl Battery {
    /// The paper's example pack: Anker Astro 5200 mAh
    /// (3.8 × 1.7 × 0.9 in).
    pub fn anker_5200() -> Self {
        Battery {
            capacity_mah: 5200.0,
            usable_fraction: 0.95,
        }
    }

    /// Usable charge, milliamp-hours.
    pub fn usable_mah(&self) -> f64 {
        self.capacity_mah * self.usable_fraction
    }

    /// Runtime in hours at a constant draw.
    ///
    /// # Panics
    /// Panics on non-positive draw.
    pub fn runtime_hours(&self, draw_a: f64) -> f64 {
        assert!(draw_a > 0.0, "draw must be positive");
        self.usable_mah() / (draw_a * 1000.0)
    }

    /// Remaining charge (mAh) after running `hours` at `draw_a`, floored
    /// at zero.
    pub fn remaining_mah(&self, draw_a: f64, hours: f64) -> f64 {
        (self.usable_mah() - draw_a * 1000.0 * hours).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_arithmetic_4_to_5_hours() {
        // §6: a 5200 mAh pack runs the headset 4–5 hours. That holds at
        // the typical draw.
        let b = Battery::anker_5200();
        let h = b.runtime_hours(VIVE_TYPICAL_DRAW_A);
        assert!((4.0..5.0).contains(&h), "h={h}");
    }

    #[test]
    fn worst_case_draw_is_about_3_hours() {
        let b = Battery::anker_5200();
        let h = b.runtime_hours(VIVE_MAX_DRAW_A);
        assert!((3.0..3.6).contains(&h), "h={h}");
    }

    #[test]
    fn mmwave_receiver_overhead_still_gives_hours() {
        // Adding a ~300 mA mmWave receiver keeps multi-hour sessions.
        let b = Battery::anker_5200();
        let h = b.runtime_hours(VIVE_TYPICAL_DRAW_A + 0.3);
        assert!(h > 3.0, "h={h}");
    }

    #[test]
    fn discharge_bookkeeping() {
        let b = Battery::anker_5200();
        let full = b.usable_mah();
        let after_1h = b.remaining_mah(1.0, 1.0);
        assert!((full - after_1h - 1000.0).abs() < 1e-9);
        // Cannot go negative.
        assert_eq!(b.remaining_mah(2.0, 100.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_draw_rejected() {
        Battery::anker_5200().runtime_hours(0.0);
    }
}
