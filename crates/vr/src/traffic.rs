//! The VR frame source.
//!
//! An HTC Vive-class headset refreshes at 90 Hz. Uncompressed, its
//! 2160 × 1200 panel at 24 bits/pixel would need ~5.6 Gb/s; with the
//! light, latency-free link-layer packing real HDMI links use
//! (chroma subsampling, blanking removal — *not* the frame-buffer
//! compression the paper rules out for latency), the stream lands at
//! ~4 Gb/s, matching [`movr_radio::VR_REQUIRED_RATE_MBPS`].

use movr_radio::VR_REQUIRED_RATE_MBPS;
use movr_sim::SimTime;

/// The headset's display stream parameters.
#[derive(Debug, Clone, Copy)]
pub struct VrTrafficModel {
    /// Display refresh rate, Hz.
    pub refresh_hz: f64,
    /// Bits per video frame.
    pub frame_bits: f64,
}

impl Default for VrTrafficModel {
    fn default() -> Self {
        VrTrafficModel::vive()
    }
}

impl VrTrafficModel {
    /// The Vive-class stream: 90 Hz, ~44.4 Mbit frames (≈4 Gb/s).
    pub fn vive() -> Self {
        VrTrafficModel {
            refresh_hz: 90.0,
            frame_bits: VR_REQUIRED_RATE_MBPS * 1e6 / 90.0,
        }
    }

    /// Time between frames.
    pub fn frame_interval(&self) -> SimTime {
        SimTime::from_secs_f64(1.0 / self.refresh_hz)
    }

    /// Average stream rate, Mb/s.
    pub fn rate_mbps(&self) -> f64 {
        self.frame_bits * self.refresh_hz / 1e6
    }

    /// Time to push one frame through a link of `link_rate_mbps`, or
    /// `None` when the link is in outage (rate 0).
    pub fn frame_airtime(&self, link_rate_mbps: f64) -> Option<SimTime> {
        if link_rate_mbps <= 0.0 {
            return None;
        }
        Some(SimTime::from_secs_f64(
            self.frame_bits / (link_rate_mbps * 1e6),
        ))
    }

    /// True if a link of `link_rate_mbps` can sustain the stream (airtime
    /// per frame fits within the frame interval).
    pub fn sustainable_on(&self, link_rate_mbps: f64) -> bool {
        match self.frame_airtime(link_rate_mbps) {
            Some(t) => t <= self.frame_interval(),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vive_rate_matches_requirement() {
        let m = VrTrafficModel::vive();
        assert!((m.rate_mbps() - VR_REQUIRED_RATE_MBPS).abs() < 1.0);
    }

    #[test]
    fn frame_interval_is_11ms() {
        let m = VrTrafficModel::vive();
        let dt = m.frame_interval().as_millis_f64();
        assert!((dt - 11.1).abs() < 0.1, "dt={dt}");
    }

    #[test]
    fn airtime_scales_inversely_with_rate() {
        let m = VrTrafficModel::vive();
        let at_full = m.frame_airtime(6756.75).unwrap();
        let at_half = m.frame_airtime(6756.75 / 2.0).unwrap();
        // Nanosecond rounding in SimTime leaves a tiny residual.
        assert!((at_half.as_secs_f64() / at_full.as_secs_f64() - 2.0).abs() < 1e-5);
    }

    #[test]
    fn outage_has_no_airtime() {
        let m = VrTrafficModel::vive();
        assert!(m.frame_airtime(0.0).is_none());
        assert!(m.frame_airtime(-5.0).is_none());
        assert!(!m.sustainable_on(0.0));
    }

    #[test]
    fn sustainability_threshold() {
        let m = VrTrafficModel::vive();
        // Exactly the stream rate: airtime == interval → sustainable.
        assert!(m.sustainable_on(m.rate_mbps()));
        assert!(!m.sustainable_on(m.rate_mbps() * 0.99));
        assert!(m.sustainable_on(6756.75));
        // The paper's blocked-link rates (≈1–2 Gb/s) cannot carry VR.
        assert!(!m.sustainable_on(1925.0));
    }
}
