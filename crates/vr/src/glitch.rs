//! Frame-delivery and glitch accounting.
//!
//! VR traffic is non-elastic: a frame that misses its refresh is a visible
//! glitch, and consecutive misses are a *stall* the player experiences as
//! the world freezing. [`GlitchTracker`] consumes per-frame outcomes from
//! the session simulation and reports the player-facing quality metrics
//! the paper argues about qualitatively.

use movr_math::convert::usize_to_f64;

/// Per-session delivery report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlitchReport {
    /// Frames the source generated.
    pub frames_total: usize,
    /// Frames delivered on time.
    pub frames_delivered: usize,
    /// Distinct glitch events (each run of ≥1 consecutive misses).
    pub glitch_events: usize,
    /// Longest run of consecutive missed frames.
    pub longest_stall_frames: usize,
    /// Fraction of frames missed, `0.0..=1.0`.
    pub loss_rate: f64,
}

impl GlitchReport {
    /// Longest stall in milliseconds at a given refresh rate.
    pub fn longest_stall_ms(&self, refresh_hz: f64) -> f64 {
        usize_to_f64(self.longest_stall_frames) * 1000.0 / refresh_hz
    }
}

/// Streaming tracker of frame outcomes.
#[derive(Debug, Clone, Default)]
pub struct GlitchTracker {
    total: usize,
    delivered: usize,
    events: usize,
    current_stall: usize,
    longest_stall: usize,
}

impl GlitchTracker {
    /// A fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one frame outcome.
    pub fn record(&mut self, delivered: bool) {
        self.total += 1;
        if delivered {
            self.delivered += 1;
            self.current_stall = 0;
        } else {
            if self.current_stall == 0 {
                self.events += 1;
            }
            self.current_stall += 1;
            self.longest_stall = self.longest_stall.max(self.current_stall);
        }
    }

    /// Frames seen so far.
    pub fn frames_total(&self) -> usize {
        self.total
    }

    /// Length of the stall in progress, frames — 0 whenever the most
    /// recent frame was delivered. Lets instrumentation observe a stall
    /// *while it runs* (and its final length at the recovery frame)
    /// instead of only the per-session maximum.
    pub fn current_stall_frames(&self) -> usize {
        self.current_stall
    }

    /// The full accumulator state `(total, delivered, events,
    /// current_stall, longest_stall)`, for checkpointing. `current_stall`
    /// matters: a resume in the middle of a stall must keep extending the
    /// same glitch event rather than opening a new one.
    pub fn state(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.total,
            self.delivered,
            self.events,
            self.current_stall,
            self.longest_stall,
        )
    }

    /// Rebuilds a tracker from a [`GlitchTracker::state`] tuple.
    pub fn from_state(state: (usize, usize, usize, usize, usize)) -> Self {
        let (total, delivered, events, current_stall, longest_stall) = state;
        GlitchTracker {
            total,
            delivered,
            events,
            current_stall,
            longest_stall,
        }
    }

    /// The report so far.
    pub fn report(&self) -> GlitchReport {
        GlitchReport {
            frames_total: self.total,
            frames_delivered: self.delivered,
            glitch_events: self.events,
            longest_stall_frames: self.longest_stall,
            loss_rate: if self.total == 0 {
                0.0
            } else {
                usize_to_f64(self.total - self.delivered) / usize_to_f64(self.total)
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(pattern: &[bool]) -> GlitchReport {
        let mut t = GlitchTracker::new();
        for &d in pattern {
            t.record(d);
        }
        t.report()
    }

    #[test]
    fn perfect_session() {
        let r = feed(&[true; 100]);
        assert_eq!(r.frames_total, 100);
        assert_eq!(r.frames_delivered, 100);
        assert_eq!(r.glitch_events, 0);
        assert_eq!(r.longest_stall_frames, 0);
        assert_eq!(r.loss_rate, 0.0);
    }

    #[test]
    fn single_miss_is_one_event() {
        let r = feed(&[true, true, false, true, true]);
        assert_eq!(r.glitch_events, 1);
        assert_eq!(r.longest_stall_frames, 1);
        assert!((r.loss_rate - 0.2).abs() < 1e-12);
    }

    #[test]
    fn consecutive_misses_are_one_event() {
        let r = feed(&[true, false, false, false, true]);
        assert_eq!(r.glitch_events, 1);
        assert_eq!(r.longest_stall_frames, 3);
    }

    #[test]
    fn separated_misses_are_separate_events() {
        let r = feed(&[false, true, false, true, false]);
        assert_eq!(r.glitch_events, 3);
        assert_eq!(r.longest_stall_frames, 1);
    }

    #[test]
    fn longest_stall_tracks_maximum() {
        let r = feed(&[false, false, true, false, false, false, true, false]);
        assert_eq!(r.longest_stall_frames, 3);
        assert_eq!(r.glitch_events, 3);
    }

    #[test]
    fn stall_milliseconds_at_90hz() {
        let r = feed(&[false, false, false]);
        let ms = r.longest_stall_ms(90.0);
        assert!((ms - 33.33).abs() < 0.01, "ms={ms}");
    }

    #[test]
    fn empty_session_is_clean() {
        // `loss_rate` must be well-defined (0.0, not 0/0 = NaN) before
        // any frame arrives — a report can be taken at any instant.
        let r = GlitchTracker::new().report();
        assert_eq!(r.frames_total, 0);
        assert_eq!(r.loss_rate, 0.0);
        assert!(!r.loss_rate.is_nan());
    }

    #[test]
    fn state_round_trip_mid_stall_extends_same_event() {
        let mut a = GlitchTracker::new();
        for d in [true, false, false] {
            a.record(d); // cut in the middle of a 4-frame stall
        }
        let mut b = GlitchTracker::from_state(a.state());
        for d in [false, false, true, false] {
            a.record(d);
            b.record(d);
        }
        assert_eq!(a.state(), b.state());
        let r = b.report();
        assert_eq!(r.glitch_events, 2, "resume must not split the stall");
        assert_eq!(r.longest_stall_frames, 4);
    }

    #[test]
    fn current_stall_tracks_the_run_in_progress() {
        let mut t = GlitchTracker::new();
        assert_eq!(t.current_stall_frames(), 0);
        t.record(true);
        assert_eq!(t.current_stall_frames(), 0);
        t.record(false);
        t.record(false);
        assert_eq!(t.current_stall_frames(), 2, "mid-stall length is visible");
        t.record(true);
        assert_eq!(t.current_stall_frames(), 0, "delivery clears the stall");
        // The historical maximum survives the reset.
        assert_eq!(t.report().longest_stall_frames, 2);
    }
}
