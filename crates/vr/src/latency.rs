//! The motion-to-photon latency budget.
//!
//! "The headset updates the display every 10ms. In principle, all
//! components of our design work much faster than this time scale" (§6).
//! [`LatencyBudget`] itemises a frame's wireless delivery: render hand-off,
//! link airtime, and any beam-realignment stall, and checks the total
//! against the budget. The paper's latency argument — beam steering is
//! sub-µs, so only a full sweep threatens the deadline — is directly
//! checkable here.

use movr_sim::SimTime;

/// One frame's delivery timeline.
#[derive(Debug, Clone, Copy)]
pub struct LatencyBudget {
    /// The end-to-end budget (paper: ~10 ms).
    pub budget: SimTime,
    /// Fixed per-frame processing before the link (scan-out, packing).
    pub processing: SimTime,
}

impl Default for LatencyBudget {
    fn default() -> Self {
        LatencyBudget {
            budget: SimTime::from_millis(10),
            processing: SimTime::from_micros(500),
        }
    }
}

impl LatencyBudget {
    /// Total delivery latency for a frame that spends `airtime` on the
    /// link after `stall` of beam-management delay.
    pub fn total(&self, airtime: SimTime, stall: SimTime) -> SimTime {
        self.processing + airtime + stall
    }

    /// True if the frame makes the display refresh.
    pub fn meets_deadline(&self, airtime: SimTime, stall: SimTime) -> bool {
        self.total(airtime, stall) <= self.budget
    }

    /// The stall the budget can still absorb for a given airtime
    /// (zero if the airtime alone already busts the budget).
    pub fn stall_headroom(&self, airtime: SimTime) -> SimTime {
        self.budget
            .saturating_since(self.processing + airtime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unstalled_fast_link_meets_deadline() {
        let b = LatencyBudget::default();
        // 44.4 Mbit at 6.76 Gb/s ≈ 6.6 ms of airtime.
        let airtime = SimTime::from_secs_f64(44.4e6 / 6.76e9);
        assert!(b.meets_deadline(airtime, SimTime::ZERO));
    }

    #[test]
    fn sub_microsecond_steering_never_matters() {
        // §6's argument: electronic steering is so fast it cannot threaten
        // the budget.
        let b = LatencyBudget::default();
        let airtime = SimTime::from_millis(7);
        let steering = SimTime::from_nanos(500);
        assert!(b.meets_deadline(airtime, steering));
    }

    #[test]
    fn full_sweep_stall_busts_deadline() {
        // A full 101×101 beam sweep at even 10 µs per probe is ~100 ms —
        // way over budget. This is why §6 wants tracking-assisted
        // realignment.
        let b = LatencyBudget::default();
        let airtime = SimTime::from_millis(7);
        let sweep = SimTime::from_millis(100);
        assert!(!b.meets_deadline(airtime, sweep));
    }

    #[test]
    fn headroom_arithmetic() {
        let b = LatencyBudget::default();
        let airtime = SimTime::from_millis(7);
        let head = b.stall_headroom(airtime);
        assert_eq!(head, SimTime::from_micros(2500));
        // Airtime over budget → zero headroom, not underflow.
        assert_eq!(
            b.stall_headroom(SimTime::from_millis(20)),
            SimTime::ZERO
        );
    }

    #[test]
    fn total_is_sum() {
        let b = LatencyBudget::default();
        let t = b.total(SimTime::from_millis(3), SimTime::from_millis(2));
        assert_eq!(t, SimTime::from_micros(5500));
    }
}
