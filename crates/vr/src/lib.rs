//! VR headset models: traffic, latency, glitches, battery.
//!
//! The paper's motivation is all here: a PC-based headset needs multiple
//! Gb/s delivered inside a ~10 ms motion-to-photon budget, cannot tolerate
//! compression latency, and — if the cable goes — needs a battery (§1,
//! §6). These models close the loop from link SNR to what the player
//! actually experiences:
//!
//! * [`traffic`] — the 90 Hz frame source and its bit-rate.
//! * [`latency`] — the motion-to-photon budget and where a wireless link
//!   spends it.
//! * [`glitch`] — frame-delivery accounting: loss rate, glitch events,
//!   longest stall.
//! * [`battery`] — §6's battery-life arithmetic for cutting the USB
//!   power cable too.

pub mod battery;
pub mod glitch;
pub mod latency;
pub mod quality;
pub mod traffic;

pub use battery::Battery;
pub use glitch::{GlitchReport, GlitchTracker};
pub use latency::LatencyBudget;
pub use quality::{QualityGrade, QualityModel};
pub use traffic::VrTrafficModel;
