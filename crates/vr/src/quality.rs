//! Player-facing experience quality.
//!
//! Frame statistics are engineering numbers; what matters to the player
//! is whether the session feels *solid*. This module maps a
//! [`GlitchReport`] to a quality grade using
//! thresholds from the VR comfort literature the paper's motivation
//! leans on: sustained 90 Hz feels native; occasional single-frame drops
//! are barely visible; multi-frame stalls break presence; frequent
//! stalls (or >1 % loss) make sessions nauseating.

use crate::glitch::GlitchReport;

/// A coarse experience grade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum QualityGrade {
    /// Unusable: the player takes the headset off.
    Unplayable,
    /// Frequent visible interruptions.
    Poor,
    /// Noticeable but tolerable hitches.
    Fair,
    /// Rare, minor hitches.
    Good,
    /// Indistinguishable from a cable.
    Excellent,
}

/// Thresholds for grading a session.
#[derive(Debug, Clone, Copy)]
pub struct QualityModel {
    /// Loss rate above which the session is unplayable.
    pub unplayable_loss: f64,
    /// Loss rate above which the session is poor.
    pub poor_loss: f64,
    /// Stall length (frames) that alone demotes a session below Good.
    pub stall_limit_frames: usize,
    /// Glitch events per minute above which the session is at most Fair.
    pub events_per_minute_limit: f64,
}

impl Default for QualityModel {
    fn default() -> Self {
        QualityModel {
            unplayable_loss: 0.10,
            poor_loss: 0.02,
            stall_limit_frames: 9, // 100 ms at 90 Hz
            events_per_minute_limit: 6.0,
        }
    }
}

impl QualityModel {
    /// Grades a session of `duration_s` seconds.
    pub fn grade(&self, report: &GlitchReport, duration_s: f64) -> QualityGrade {
        assert!(duration_s > 0.0, "duration must be positive");
        if report.loss_rate >= self.unplayable_loss {
            return QualityGrade::Unplayable;
        }
        let events_per_minute = movr_math::convert::usize_to_f64(report.glitch_events) * 60.0 / duration_s;
        if report.loss_rate >= self.poor_loss {
            return QualityGrade::Poor;
        }
        if report.longest_stall_frames > self.stall_limit_frames
            || events_per_minute > self.events_per_minute_limit
        {
            return QualityGrade::Fair;
        }
        if report.glitch_events > 0 {
            return QualityGrade::Good;
        }
        QualityGrade::Excellent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glitch::GlitchTracker;

    fn report(pattern: &[bool]) -> GlitchReport {
        let mut t = GlitchTracker::new();
        for &d in pattern {
            t.record(d);
        }
        t.report()
    }

    #[test]
    fn perfect_is_excellent() {
        let r = report(&[true; 900]);
        assert_eq!(QualityModel::default().grade(&r, 10.0), QualityGrade::Excellent);
    }

    #[test]
    fn single_short_hitch_is_good() {
        let mut p = vec![true; 900];
        p[450] = false;
        let r = report(&p);
        assert_eq!(QualityModel::default().grade(&r, 10.0), QualityGrade::Good);
    }

    #[test]
    fn long_stall_is_fair_at_best() {
        let mut p = vec![true; 900];
        for slot in p.iter_mut().skip(400).take(12) {
            *slot = false; // 133 ms freeze
        }
        let r = report(&p);
        assert_eq!(QualityModel::default().grade(&r, 10.0), QualityGrade::Fair);
    }

    #[test]
    fn frequent_events_are_fair() {
        // 12 separate one-frame hitches in 10 s = 72/min.
        let mut p = vec![true; 900];
        for k in 0..12 {
            p[k * 70 + 5] = false;
        }
        let r = report(&p);
        assert_eq!(QualityModel::default().grade(&r, 10.0), QualityGrade::Fair);
    }

    #[test]
    fn heavy_loss_is_poor_then_unplayable() {
        // ~4.4% loss → Poor.
        let mut p = vec![true; 900];
        for slot in p.iter_mut().skip(200).take(40) {
            *slot = false;
        }
        let r = report(&p);
        assert_eq!(QualityModel::default().grade(&r, 10.0), QualityGrade::Poor);
        // ~22% loss → Unplayable.
        let mut p = vec![true; 900];
        for slot in p.iter_mut().skip(100).take(200) {
            *slot = false;
        }
        let r = report(&p);
        assert_eq!(
            QualityModel::default().grade(&r, 10.0),
            QualityGrade::Unplayable
        );
    }

    #[test]
    fn grades_order() {
        assert!(QualityGrade::Excellent > QualityGrade::Good);
        assert!(QualityGrade::Good > QualityGrade::Fair);
        assert!(QualityGrade::Fair > QualityGrade::Poor);
        assert!(QualityGrade::Poor > QualityGrade::Unplayable);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_duration_rejected() {
        QualityModel::default().grade(&report(&[true]), 0.0);
    }
}
