//! Bluetooth-LE-class message delivery.
//!
//! A BLE connection delivers small PDUs once per connection event; with a
//! short connection interval that is a per-message latency of a few
//! milliseconds to ~10 ms, with jitter and occasional loss. The channel
//! model is a delay queue: `send` stamps a delivery time (or drops the
//! message), `deliveries` hands back everything due, in delivery order.
//!
//! Latency here is what makes control-plane round trips *expensive*
//! relative to the 10 ms frame budget — the quantitative reason §6 wants
//! tracking-assisted realignment instead of chatty full sweeps.

use crate::message::ControlMessage;
use movr_math::SimRng;
use movr_obs::{Event, NullRecorder, Recorder};
use movr_sim::SimTime;

/// A lossy, delayed control link.
///
/// ```
/// use movr_control::{ControlChannel, ControlMessage};
/// use movr_sim::SimTime;
///
/// let mut ch = ControlChannel::bluetooth(1);
/// let sent_at = SimTime::ZERO;
/// if let Some(arrives) = ch.send(sent_at, ControlMessage::StopModulation) {
///     // BLE-class latency: several milliseconds, never instant.
///     assert!(arrives >= SimTime::from_micros(7_500));
///     assert!(ch.deliveries(arrives).len() == 1);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ControlChannel {
    /// Median one-way latency.
    pub latency: SimTime,
    /// Uniform jitter added on top, up to this much.
    pub jitter: SimTime,
    /// Probability a message is lost outright.
    pub loss_probability: f64,
    rng: SimRng,
    in_flight: Vec<(SimTime, u64, ControlMessage)>,
    seq: u64,
}

impl ControlChannel {
    /// A BLE-class link: 7.5 ms latency, up to 2.5 ms jitter, 1 % loss.
    pub fn bluetooth(seed: u64) -> Self {
        ControlChannel {
            latency: SimTime::from_micros(7_500),
            jitter: SimTime::from_micros(2_500),
            loss_probability: 0.01,
            rng: SimRng::seed_from_u64(seed),
            in_flight: Vec::new(),
            seq: 0,
        }
    }

    /// A perfect, instant link (for oracles and unit tests).
    pub fn ideal() -> Self {
        ControlChannel {
            latency: SimTime::ZERO,
            jitter: SimTime::ZERO,
            loss_probability: 0.0,
            rng: SimRng::seed_from_u64(0),
            in_flight: Vec::new(),
            seq: 0,
        }
    }

    /// Sends a message at `now`. Returns the delivery time, or `None` if
    /// the message was lost.
    pub fn send(&mut self, now: SimTime, msg: ControlMessage) -> Option<SimTime> {
        self.send_recorded(now, msg, &mut NullRecorder)
    }

    /// [`ControlChannel::send`] with observability: emits one `ctrl_send`
    /// event per attempt (`lost` marks drops; delivered sends carry the
    /// arrival time). Identical channel behaviour — the recorder never
    /// touches the RNG stream.
    pub fn send_recorded(
        &mut self,
        now: SimTime,
        msg: ControlMessage,
        rec: &mut dyn Recorder,
    ) -> Option<SimTime> {
        if self.rng.chance(self.loss_probability) {
            if rec.enabled() {
                rec.record(
                    Event::new(now, "ctrl_send")
                        .with("msg", msg.kind())
                        .with("bytes", msg.size_bytes())
                        .with("lost", true),
                );
            }
            return None;
        }
        let jitter_ns = if self.jitter == SimTime::ZERO {
            0
        } else {
            movr_math::convert::f64_to_u64(
                self.rng
                    .uniform(0.0, movr_math::convert::u64_to_f64(self.jitter.as_nanos())),
            )
        };
        let at = now + self.latency + SimTime::from_nanos(jitter_ns);
        self.in_flight.push((at, self.seq, msg));
        self.seq += 1;
        if rec.enabled() {
            rec.record(
                Event::new(now, "ctrl_send")
                    .with("msg", msg.kind())
                    .with("bytes", msg.size_bytes())
                    .with("lost", false)
                    .with("deliver_at_ns", at),
            );
        }
        Some(at)
    }

    /// Messages due at or before `now`, in (time, send-order) order.
    pub fn deliveries(&mut self, now: SimTime) -> Vec<(SimTime, ControlMessage)> {
        let mut due: Vec<(SimTime, u64, ControlMessage)> = Vec::new();
        self.in_flight.retain(|&(at, seq, msg)| {
            if at <= now {
                due.push((at, seq, msg));
                false
            } else {
                true
            }
        });
        due.sort_by_key(|&(at, seq, _)| (at, seq));
        due.into_iter().map(|(at, _, msg)| (at, msg)).collect()
    }

    /// Messages still in flight.
    pub fn pending(&self) -> usize {
        self.in_flight.len()
    }

    /// The worst-case one-way latency (median + full jitter).
    pub fn max_latency(&self) -> SimTime {
        self.latency + self.jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_channel_delivers_instantly() {
        let mut ch = ControlChannel::ideal();
        let now = SimTime::from_millis(5);
        let at = ch.send(now, ControlMessage::Ack).unwrap();
        assert_eq!(at, now);
        let d = ch.deliveries(now);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1, ControlMessage::Ack);
        assert_eq!(ch.pending(), 0);
    }

    #[test]
    fn bluetooth_latency_band() {
        // 1000 sends at 1% loss: expect ~10 drops. The band below is
        // ±6 sigma, so the test is robust to the particular seed rather
        // than pinned to one lucky draw sequence.
        let mut ch = ControlChannel::bluetooth(1);
        let total = 1000;
        let mut delivered = 0;
        for i in 0..total {
            let now = SimTime::from_millis(i * 50);
            if let Some(at) = ch.send(now, ControlMessage::Ack) {
                let lat = (at - now).as_secs_f64();
                assert!((0.0075..=0.0101).contains(&lat), "lat={lat}");
                delivered += 1;
            }
        }
        // ~1% loss: overwhelming majority delivered, but not all.
        assert!(delivered >= total - 30, "delivered={delivered}");
        assert!(delivered < total, "some loss expected at 1%");
    }

    #[test]
    fn not_due_until_latency_elapses() {
        let mut ch = ControlChannel::bluetooth(2);
        let now = SimTime::ZERO;
        ch.send(now, ControlMessage::StopModulation).unwrap();
        assert!(ch.deliveries(SimTime::from_millis(5)).is_empty());
        let d = ch.deliveries(SimTime::from_millis(15));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn deliveries_preserve_order() {
        let mut ch = ControlChannel::ideal();
        for i in 0..10 {
            ch.send(
                SimTime::from_millis(i),
                ControlMessage::SetAmplifierGain { gain_db: i as f64 },
            );
        }
        let d = ch.deliveries(SimTime::from_millis(100));
        assert_eq!(d.len(), 10);
        for (i, (_, msg)) in d.iter().enumerate() {
            assert_eq!(
                *msg,
                ControlMessage::SetAmplifierGain { gain_db: i as f64 }
            );
        }
    }

    #[test]
    fn lossless_when_probability_zero() {
        let mut ch = ControlChannel::ideal();
        for _ in 0..1000 {
            assert!(ch.send(SimTime::ZERO, ControlMessage::Ack).is_some());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut ch = ControlChannel::bluetooth(seed);
            (0..100)
                .map(|i| ch.send(SimTime::from_millis(i), ControlMessage::Ack))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn max_latency() {
        let ch = ControlChannel::bluetooth(0);
        assert_eq!(ch.max_latency(), SimTime::from_micros(10_000));
    }

    #[test]
    fn recorded_send_emits_one_event_per_attempt() {
        use movr_obs::{MemoryRecorder, Value};
        let mut ch = ControlChannel::bluetooth(1);
        ch.loss_probability = 0.5;
        let mut rec = MemoryRecorder::new();
        let mut losses = 0;
        for i in 0..40u64 {
            if ch
                .send_recorded(SimTime::from_millis(i * 20), ControlMessage::Ack, &mut rec)
                .is_none()
            {
                losses += 1;
            }
        }
        assert_eq!(rec.of_kind("ctrl_send").count(), 40);
        let recorded_losses = rec
            .of_kind("ctrl_send")
            .filter(|e| e.field("lost") == Some(&Value::Bool(true)))
            .count();
        assert_eq!(recorded_losses, losses);
        assert!(losses > 0, "50% loss over 40 sends must drop something");
    }

    #[test]
    fn recorder_does_not_perturb_the_channel() {
        use movr_obs::MemoryRecorder;
        // Same seed, with and without a recorder: identical delivery times.
        let run = |record: bool| {
            let mut ch = ControlChannel::bluetooth(5);
            let mut rec = MemoryRecorder::new();
            (0..50u64)
                .map(|i| {
                    let now = SimTime::from_millis(i * 30);
                    if record {
                        ch.send_recorded(now, ControlMessage::Ack, &mut rec)
                    } else {
                        ch.send(now, ControlMessage::Ack)
                    }
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }
}
