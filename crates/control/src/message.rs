//! Control-protocol messages.
//!
//! The vocabulary exchanged over the AP↔reflector Bluetooth link and the
//! AP↔headset side channel. Messages are deliberately small and concrete:
//! each corresponds to an action the paper's protocol takes.

/// A control-plane message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlMessage {
    /// AP → reflector: steer the receive and transmit beams (absolute
    /// bearings, degrees). Used at every step of the alignment sweep and
    /// when switching to serve the headset.
    SetReflectorBeams {
        /// Receive-beam bearing, degrees.
        rx_deg: f64,
        /// Transmit-beam bearing, degrees.
        tx_deg: f64,
    },
    /// AP → reflector: command the amplifier gain (dB).
    SetAmplifierGain {
        /// Commanded amplifier gain, dB.
        gain_db: f64,
    },
    /// AP → reflector: start on/off modulating the amplifier at `freq_hz`
    /// for the backscatter measurement.
    StartModulation {
        /// On/off modulation frequency, Hz.
        freq_hz: f64,
    },
    /// AP → reflector: stop modulating (serve data).
    StopModulation,
    /// AP → reflector: run the current-sensing gain-control loop now.
    RunGainControl,
    /// Reflector → AP: gain control finished; the chosen safe gain.
    GainControlDone {
        /// The safe gain the loop settled on, dB.
        gain_db: f64,
    },
    /// Headset → AP: periodic SNR report (the §4.1 trigger for
    /// re-measurement when SNR degrades).
    SnrReport {
        /// Measured link SNR at the headset, dB.
        snr_db: f64,
    },
    /// AP → headset: steer the headset's receive beam.
    SetHeadsetBeam {
        /// Receive-beam bearing for the headset array, degrees.
        rx_deg: f64,
    },
    /// Either direction: positive acknowledgement of the last command.
    Ack,
}

impl ControlMessage {
    /// Stable short name of the message variant, for structured event
    /// fields and log lines.
    pub fn kind(&self) -> &'static str {
        match self {
            ControlMessage::SetReflectorBeams { .. } => "set_reflector_beams",
            ControlMessage::SetAmplifierGain { .. } => "set_amplifier_gain",
            ControlMessage::StartModulation { .. } => "start_modulation",
            ControlMessage::StopModulation => "stop_modulation",
            ControlMessage::RunGainControl => "run_gain_control",
            ControlMessage::GainControlDone { .. } => "gain_control_done",
            ControlMessage::SnrReport { .. } => "snr_report",
            ControlMessage::SetHeadsetBeam { .. } => "set_headset_beam",
            ControlMessage::Ack => "ack",
        }
    }

    /// Rough on-air size in bytes (for airtime accounting on the slow
    /// link). All messages fit one BLE data PDU.
    pub fn size_bytes(&self) -> usize {
        match self {
            ControlMessage::SetReflectorBeams { .. } => 12,
            ControlMessage::SetAmplifierGain { .. } => 8,
            ControlMessage::StartModulation { .. } => 8,
            ControlMessage::StopModulation => 4,
            ControlMessage::RunGainControl => 4,
            ControlMessage::GainControlDone { .. } => 8,
            ControlMessage::SnrReport { .. } => 8,
            ControlMessage::SetHeadsetBeam { .. } => 8,
            ControlMessage::Ack => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_fit_ble_pdu() {
        let msgs = [
            ControlMessage::SetReflectorBeams {
                rx_deg: 90.0,
                tx_deg: 120.0,
            },
            ControlMessage::SetAmplifierGain { gain_db: 22.0 },
            ControlMessage::StartModulation { freq_hz: 100e3 },
            ControlMessage::StopModulation,
            ControlMessage::RunGainControl,
            ControlMessage::GainControlDone { gain_db: 21.5 },
            ControlMessage::SnrReport { snr_db: 17.0 },
            ControlMessage::SetHeadsetBeam { rx_deg: 45.0 },
            ControlMessage::Ack,
        ];
        for m in msgs {
            assert!(m.size_bytes() <= 27, "{m:?} exceeds a BLE data PDU");
            assert!(m.size_bytes() >= 2);
        }
    }

    #[test]
    fn equality_carries_payload() {
        assert_eq!(
            ControlMessage::SnrReport { snr_db: 1.0 },
            ControlMessage::SnrReport { snr_db: 1.0 }
        );
        assert_ne!(
            ControlMessage::SnrReport { snr_db: 1.0 },
            ControlMessage::SnrReport { snr_db: 2.0 }
        );
    }
}
