//! The MoVR control plane.
//!
//! "MoVR has a bluetooth link with the AP to exchange control information.
//! Our prototype uses an Arduino to run its control protocol" (§4). The
//! data plane is pure analog RF; everything coordinated — beam commands
//! during alignment sweeps, modulation on/off, SNR degradation reports
//! from the headset — crosses this low-rate side channel.
//!
//! * [`message`] — the protocol vocabulary.
//! * [`channel`] — a Bluetooth-LE-class delivery model: per-message
//!   latency with jitter and occasional loss, deterministic per seed.

pub mod channel;
pub mod message;
pub mod protocol;

pub use channel::ControlChannel;
pub use message::ControlMessage;
pub use protocol::{CommandSession, SessionStats, SessionStatus};
