//! Reliable command delivery over the lossy control link.
//!
//! The Arduino protocol is stop-and-wait: the AP sends one command,
//! the firmware applies it and returns an [`ControlMessage::Ack`]; a
//! missing ack triggers a retransmission after a timeout, up to a retry
//! budget. Commands are idempotent (beam angles, gain values), so a
//! duplicated retransmission is harmless.
//!
//! [`CommandSession`] models both directions of the link and the
//! firmware's auto-ack, driven by explicit `poll(now)` calls from the
//! simulation loop — no hidden clocks.

use crate::channel::ControlChannel;
use crate::message::ControlMessage;
use movr_obs::{Event, NullRecorder, Recorder};
use movr_sim::SimTime;

/// The state of the in-flight command, as reported by `poll`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SessionStatus {
    /// Nothing in flight.
    Idle,
    /// A command is awaiting its ack.
    AwaitingAck,
    /// The command was acknowledged at this instant.
    Acked(SimTime),
    /// The retry budget is exhausted; the command failed.
    Failed,
}

/// Cumulative protocol counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SessionStats {
    /// Commands submitted.
    pub submitted: usize,
    /// Transmissions (first sends + retransmissions).
    pub transmissions: usize,
    /// Retransmissions alone.
    pub retries: usize,
    /// Commands acknowledged.
    pub acked: usize,
    /// Commands failed after exhausting retries.
    pub failed: usize,
}

#[derive(Debug, Clone)]
struct Outstanding {
    msg: ControlMessage,
    sent_at: SimTime,
    retries_left: u32,
    acked_at: Option<SimTime>,
    failed: bool,
}

/// A bidirectional stop-and-wait command session AP ↔ reflector.
#[derive(Debug, Clone)]
pub struct CommandSession {
    forward: ControlChannel,
    reverse: ControlChannel,
    /// Retransmission timeout.
    pub timeout: SimTime,
    /// Retransmissions allowed per command.
    pub max_retries: u32,
    outstanding: Option<Outstanding>,
    /// Every command the firmware applied, in order (duplicates appear
    /// twice: commands are idempotent, the record is for inspection).
    applied: Vec<(SimTime, ControlMessage)>,
    stats: SessionStats,
}

impl CommandSession {
    /// A session over the given channels. A sensible timeout is a bit
    /// over twice the worst one-way latency.
    pub fn new(forward: ControlChannel, reverse: ControlChannel, max_retries: u32) -> Self {
        let timeout_ns =
            2 * forward.max_latency().as_nanos() + 2 * reverse.max_latency().as_nanos() + 1_000_000;
        CommandSession {
            forward,
            reverse,
            timeout: SimTime::from_nanos(timeout_ns),
            max_retries,
            outstanding: None,
            applied: Vec::new(),
            stats: SessionStats::default(),
        }
    }

    /// A session over symmetric Bluetooth-class channels.
    pub fn bluetooth(seed: u64, max_retries: u32) -> Self {
        CommandSession::new(
            ControlChannel::bluetooth(seed),
            ControlChannel::bluetooth(seed.wrapping_add(1)),
            max_retries,
        )
    }

    /// Commands the firmware has applied so far.
    pub fn applied(&self) -> &[(SimTime, ControlMessage)] {
        &self.applied
    }

    /// Protocol counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Submits a command at `now`. Returns `false` (and does nothing) if
    /// another command is still in flight — stop-and-wait means one at a
    /// time.
    pub fn submit(&mut self, now: SimTime, msg: ControlMessage) -> bool {
        self.submit_recorded(now, msg, &mut NullRecorder)
    }

    /// [`CommandSession::submit`] with observability: emits a
    /// `cmd_submit` event (and the forward channel's `ctrl_send`).
    pub fn submit_recorded(
        &mut self,
        now: SimTime,
        msg: ControlMessage,
        rec: &mut dyn Recorder,
    ) -> bool {
        if matches!(
            self.outstanding,
            Some(Outstanding {
                acked_at: None,
                failed: false,
                ..
            })
        ) {
            return false;
        }
        self.stats.submitted += 1;
        self.stats.transmissions += 1;
        if rec.enabled() {
            rec.record(Event::new(now, "cmd_submit").with("msg", msg.kind()));
        }
        self.forward.send_recorded(now, msg, rec);
        self.outstanding = Some(Outstanding {
            msg,
            sent_at: now,
            retries_left: self.max_retries,
            acked_at: None,
            failed: false,
        });
        true
    }

    /// Advances the protocol to `now`: delivers forward commands to the
    /// firmware (which acks), delivers acks back, retransmits on
    /// timeout. Returns the current status.
    pub fn poll(&mut self, now: SimTime) -> SessionStatus {
        self.poll_recorded(now, &mut NullRecorder)
    }

    /// [`CommandSession::poll`] with observability: emits `cmd_applied`
    /// (firmware side), `cmd_ack` with the command's round-trip time,
    /// `cmd_retry` on each retransmission, and `cmd_fail` when the retry
    /// budget is exhausted.
    pub fn poll_recorded(&mut self, now: SimTime, rec: &mut dyn Recorder) -> SessionStatus {
        // Firmware side: apply every delivered command, ack each.
        for (at, msg) in self.forward.deliveries(now) {
            if rec.enabled() {
                rec.record(Event::new(at, "cmd_applied").with("msg", msg.kind()));
            }
            self.applied.push((at, msg));
            self.reverse.send_recorded(at, ControlMessage::Ack, rec);
        }
        // AP side: consume acks.
        let acks = self.reverse.deliveries(now);
        if let Some(out) = &mut self.outstanding {
            if out.acked_at.is_none() && !out.failed {
                if let Some(&(at, _)) = acks.first() {
                    out.acked_at = Some(at);
                    self.stats.acked += 1;
                    if rec.enabled() {
                        rec.record(
                            Event::new(at, "cmd_ack")
                                .with("msg", out.msg.kind())
                                .with("rtt_ns", at.saturating_since(out.sent_at)),
                        );
                    }
                } else if now.saturating_since(out.sent_at) >= self.timeout {
                    if out.retries_left == 0 {
                        out.failed = true;
                        self.stats.failed += 1;
                        if rec.enabled() {
                            rec.record(
                                Event::new(now, "cmd_fail")
                                    .with("msg", out.msg.kind())
                                    .with("retries", self.max_retries as u64),
                            );
                        }
                    } else {
                        out.retries_left -= 1;
                        out.sent_at = now;
                        self.stats.retries += 1;
                        self.stats.transmissions += 1;
                        let msg = out.msg;
                        if rec.enabled() {
                            rec.record(
                                Event::new(now, "cmd_retry")
                                    .with("msg", msg.kind())
                                    .with("retries_left", out.retries_left as u64),
                            );
                        }
                        self.forward.send_recorded(now, msg, rec);
                    }
                }
            }
        }
        match &self.outstanding {
            None => SessionStatus::Idle,
            Some(o) if o.failed => SessionStatus::Failed,
            Some(o) => match o.acked_at {
                Some(at) => SessionStatus::Acked(at),
                None => SessionStatus::AwaitingAck,
            },
        }
    }

    /// Runs `poll` repeatedly at `step` intervals until the in-flight
    /// command resolves (acked/failed) or `deadline` passes. Returns the
    /// final status and the time of resolution.
    pub fn drive_until_resolved(
        &mut self,
        mut now: SimTime,
        step: SimTime,
        deadline: SimTime,
    ) -> (SessionStatus, SimTime) {
        loop {
            let status = self.poll(now);
            match status {
                SessionStatus::Acked(_) | SessionStatus::Failed | SessionStatus::Idle => {
                    return (status, now);
                }
                SessionStatus::AwaitingAck if now >= deadline => {
                    return (status, now);
                }
                _ => now += step,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal_session() -> CommandSession {
        CommandSession::new(ControlChannel::ideal(), ControlChannel::ideal(), 3)
    }

    fn cmd() -> ControlMessage {
        ControlMessage::SetAmplifierGain { gain_db: 30.0 }
    }

    #[test]
    fn ideal_channel_acks_immediately() {
        let mut s = ideal_session();
        assert!(s.submit(SimTime::ZERO, cmd()));
        let status = s.poll(SimTime::ZERO);
        assert!(matches!(status, SessionStatus::Acked(_)));
        assert_eq!(s.applied().len(), 1);
        assert_eq!(s.stats().retries, 0);
    }

    #[test]
    fn stop_and_wait_rejects_concurrent_commands() {
        let mut s = CommandSession::bluetooth(1, 3);
        assert!(s.submit(SimTime::ZERO, cmd()));
        assert!(!s.submit(SimTime::from_millis(1), ControlMessage::StopModulation));
        // After the ack, a new command is accepted.
        let (status, t) = s.drive_until_resolved(
            SimTime::from_millis(1),
            SimTime::from_millis(1),
            SimTime::from_millis(500),
        );
        assert!(matches!(status, SessionStatus::Acked(_)), "{status:?}");
        assert!(s.submit(t + SimTime::from_millis(1), ControlMessage::StopModulation));
    }

    #[test]
    fn bluetooth_ack_takes_a_round_trip() {
        let mut s = CommandSession::bluetooth(2, 3);
        s.submit(SimTime::ZERO, cmd());
        let (status, _) = s.drive_until_resolved(
            SimTime::ZERO,
            SimTime::from_millis(1),
            SimTime::from_millis(500),
        );
        match status {
            SessionStatus::Acked(at) => {
                // Two BLE hops: at least 15 ms.
                assert!(at >= SimTime::from_millis(15), "at={at}");
                assert!(at <= SimTime::from_millis(25), "at={at}");
            }
            other => panic!("expected ack, got {other:?}"),
        }
    }

    #[test]
    fn lossy_link_retries_until_acked() {
        // Very lossy forward channel: retries must kick in, and with a
        // generous budget every command still lands. Several commands run
        // back-to-back so the test doesn't hinge on one 40 % first-try
        // success: at 60 % loss, the odds all eight first sends get
        // through are under 0.1 %.
        let mut forward = ControlChannel::bluetooth(7);
        forward.loss_probability = 0.6;
        let mut s = CommandSession::new(forward, ControlChannel::ideal(), 50);
        let mut now = SimTime::ZERO;
        for _ in 0..8 {
            assert!(s.submit(now, cmd()));
            let (status, resolved_at) = s.drive_until_resolved(
                now,
                SimTime::from_millis(1),
                now + SimTime::from_secs_f64(10.0),
            );
            assert!(matches!(status, SessionStatus::Acked(_)), "{status:?}");
            now = resolved_at + SimTime::from_millis(1);
        }
        assert!(s.stats().retries > 0, "loss at 60% must force retries");
        assert!(s.applied().len() >= 8);
    }

    #[test]
    fn exhausted_retries_fail() {
        let mut forward = ControlChannel::bluetooth(3);
        forward.loss_probability = 1.0; // black hole
        let mut s = CommandSession::new(forward, ControlChannel::ideal(), 2);
        s.submit(SimTime::ZERO, cmd());
        let (status, _) = s.drive_until_resolved(
            SimTime::ZERO,
            SimTime::from_millis(5),
            SimTime::from_secs_f64(5.0),
        );
        assert_eq!(status, SessionStatus::Failed);
        assert_eq!(s.stats().failed, 1);
        assert_eq!(s.stats().transmissions, 3); // 1 send + 2 retries
        assert!(s.applied().is_empty());
    }

    #[test]
    fn duplicates_are_possible_but_recorded() {
        // Lossy *reverse* channel: the command applies but the ack dies,
        // forcing a retransmission the firmware applies again — which is
        // fine because commands are idempotent.
        let mut reverse = ControlChannel::bluetooth(4);
        reverse.loss_probability = 1.0;
        let mut s = CommandSession::new(ControlChannel::ideal(), reverse, 2);
        s.submit(SimTime::ZERO, cmd());
        let (status, _) = s.drive_until_resolved(
            SimTime::ZERO,
            SimTime::from_millis(5),
            SimTime::from_secs_f64(5.0),
        );
        assert_eq!(status, SessionStatus::Failed, "acks never return");
        assert!(s.applied().len() >= 2, "retransmissions re-apply");
        let first = s.applied()[0].1;
        assert!(s.applied().iter().all(|&(_, m)| m == first));
    }

    #[test]
    fn recorded_protocol_emits_retry_and_ack_timeline() {
        use movr_obs::MemoryRecorder;
        // Lossy forward channel: the timeline must show the retries that
        // the stats already count, plus exactly one ack per command.
        let mut forward = ControlChannel::bluetooth(7);
        forward.loss_probability = 0.6;
        let mut s = CommandSession::new(forward, ControlChannel::ideal(), 50);
        let mut rec = MemoryRecorder::new();
        let mut now = SimTime::ZERO;
        for _ in 0..4 {
            assert!(s.submit_recorded(now, cmd(), &mut rec));
            loop {
                match s.poll_recorded(now, &mut rec) {
                    SessionStatus::Acked(_) | SessionStatus::Failed => break,
                    _ => now += SimTime::from_millis(1),
                }
            }
            now += SimTime::from_millis(1);
        }
        assert_eq!(rec.of_kind("cmd_submit").count(), 4);
        assert_eq!(rec.of_kind("cmd_ack").count(), s.stats().acked);
        assert_eq!(rec.of_kind("cmd_retry").count(), s.stats().retries);
        assert_eq!(
            rec.of_kind("ctrl_send").count(),
            s.stats().transmissions + s.applied().len(),
            "one ctrl_send per forward transmission plus one per ack"
        );
    }

    #[test]
    fn recorded_failure_emits_cmd_fail() {
        use movr_obs::MemoryRecorder;
        let mut forward = ControlChannel::bluetooth(3);
        forward.loss_probability = 1.0;
        let mut s = CommandSession::new(forward, ControlChannel::ideal(), 2);
        let mut rec = MemoryRecorder::new();
        s.submit_recorded(SimTime::ZERO, cmd(), &mut rec);
        let mut now = SimTime::ZERO;
        while !matches!(s.poll_recorded(now, &mut rec), SessionStatus::Failed) {
            now += SimTime::from_millis(5);
            assert!(now < SimTime::from_secs_f64(5.0), "must fail within budget");
        }
        assert_eq!(rec.of_kind("cmd_fail").count(), 1);
        assert_eq!(rec.of_kind("cmd_retry").count(), 2);
        assert_eq!(rec.of_kind("cmd_ack").count(), 0);
    }

    #[test]
    fn sweep_of_commands_completes() {
        // Sequence 21 beam commands through the reliable layer, as the
        // install sweep does, and verify all arrive in order.
        let mut s = CommandSession::bluetooth(9, 5);
        let mut now = SimTime::ZERO;
        for k in 0..21 {
            let msg = ControlMessage::SetReflectorBeams {
                rx_deg: -102.0,
                tx_deg: -80.0 + k as f64,
            };
            assert!(s.submit(now, msg));
            let (status, t) = s.drive_until_resolved(
                now,
                SimTime::from_millis(1),
                now + SimTime::from_secs_f64(2.0),
            );
            assert!(matches!(status, SessionStatus::Acked(_)));
            now = t + SimTime::from_millis(1);
        }
        // All 21 applied (duplicates allowed), in non-decreasing tx order.
        let applied = s.applied();
        assert!(applied.len() >= 21);
        let mut last_tx = f64::NEG_INFINITY;
        for &(_, m) in applied {
            if let ControlMessage::SetReflectorBeams { tx_deg, .. } = m {
                assert!(tx_deg >= last_tx - 1e-9);
                last_tx = last_tx.max(tx_deg);
            }
        }
    }
}
