//! `movr-obs` — fleet trace analytics for MoVR JSONL timelines.
//!
//! ```text
//! movr-obs reduce [--threads N] [--out FILE] TIMELINE.jsonl...
//! movr-obs diff ROLLUP_A.json ROLLUP_B.json
//! movr-obs check --baseline bench-baseline.toml BENCH.json
//! ```
//!
//! * `reduce` folds one or more JSONL event streams into a single
//!   rollup document (sorted keys, one line) on stdout or `--out`.
//!   Streams are reduced independently — in parallel with `--threads`
//!   — and merged in argument order, so the output is byte-identical
//!   for every thread count.
//! * `diff` structurally compares two rollup documents, printing one
//!   line per diverging path. Exit status: 0 identical, 1 different.
//! * `check` runs the perf ratchet: every pin in the baseline against
//!   a bench JSON-lines file. Exit status: 0 all pins pass, 1 any
//!   regression.
//!
//! Errors (unreadable files, malformed lines) exit with status 2 and a
//! `stream:line: reason` message on stderr.

use movr_obs::{check, diff_json, parse_baseline, reduce_one_stream, Json, Rollup};
use std::fs::File;
use std::io::{BufReader, Write as _};

const USAGE: &str = "usage:
  movr-obs reduce [--threads N] [--out FILE] TIMELINE.jsonl...
  movr-obs diff ROLLUP_A.json ROLLUP_B.json
  movr-obs check --baseline bench-baseline.toml BENCH.json";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => std::process::exit(code),
        Err(msg) => {
            eprintln!("movr-obs: {msg}");
            std::process::exit(2);
        }
    }
}

fn run(args: &[String]) -> Result<i32, String> {
    match args.first().map(String::as_str) {
        Some("reduce") => cmd_reduce(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("--help" | "-h") => {
            println!("{USAGE}");
            Ok(0)
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
        None => Err(format!("missing subcommand\n{USAGE}")),
    }
}

/// Pulls `--flag VALUE` out of `args`, returning the remaining
/// positional arguments and the flag's value if present.
fn take_flag(args: &[String], flag: &str) -> Result<(Vec<String>, Option<String>), String> {
    let mut rest = Vec::new();
    let mut value = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            match it.next() {
                Some(v) => value = Some(v.clone()),
                None => return Err(format!("`{flag}` needs a value")),
            }
        } else {
            rest.push(a.clone());
        }
    }
    Ok((rest, value))
}

fn cmd_reduce(args: &[String]) -> Result<i32, String> {
    let (args, threads) = take_flag(args, "--threads")?;
    let (files, out_path) = take_flag(&args, "--out")?;
    let threads = match threads {
        None => 1,
        Some(t) => t
            .parse::<usize>()
            .map_err(|_| format!("`--threads` is not a number: `{t}`"))?
            .max(1),
    };
    if files.is_empty() {
        return Err(format!("`reduce` needs at least one timeline file\n{USAGE}"));
    }
    if let Some(bad) = files.iter().find(|f| f.starts_with('-')) {
        return Err(format!("unknown flag `{bad}`\n{USAGE}"));
    }

    // Per-stream fold, merge in argument order: the same shape at every
    // thread count, so the output bytes never depend on `--threads`.
    let parts = movr_sim::pool_map(files.clone(), threads, |_, path: &String| {
        let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
        reduce_one_stream(path, BufReader::new(file)).map_err(|e| e.to_string())
    });
    let mut rollup = Rollup::new();
    let mut events = 0u64;
    for (path, part) in files.iter().zip(parts) {
        let (part, n) = part?;
        rollup
            .merge(&part)
            .map_err(|e| format!("{path}: rollup merge failed: {e}"))?;
        events += n;
    }

    let mut json = rollup.to_json();
    json.push('\n');
    match out_path {
        None => {
            let mut stdout = std::io::stdout().lock();
            stdout
                .write_all(json.as_bytes())
                .and_then(|()| stdout.flush())
                .map_err(|e| format!("stdout: {e}"))?;
        }
        Some(path) => {
            std::fs::write(&path, &json).map_err(|e| format!("{path}: {e}"))?;
        }
    }
    eprintln!(
        "movr-obs: reduced {events} events from {} stream(s) into {} session(s)",
        files.len(),
        rollup.sessions().len(),
    );
    Ok(0)
}

fn load_json(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(text.trim_end()).map_err(|e| format!("{path}: {e}"))
}

fn cmd_diff(args: &[String]) -> Result<i32, String> {
    let [a_path, b_path] = args else {
        return Err(format!("`diff` takes exactly two rollup files\n{USAGE}"));
    };
    let a = load_json(a_path)?;
    let b = load_json(b_path)?;
    let entries = diff_json(&a, &b);
    if entries.is_empty() {
        println!("identical");
        return Ok(0);
    }
    for e in &entries {
        println!("{e}");
    }
    println!("{} difference(s)", entries.len());
    Ok(1)
}

fn cmd_check(args: &[String]) -> Result<i32, String> {
    let (files, baseline_path) = take_flag(args, "--baseline")?;
    let baseline_path = baseline_path.ok_or(format!("`check` needs `--baseline`\n{USAGE}"))?;
    let [bench_path] = files.as_slice() else {
        return Err(format!("`check` takes exactly one bench JSON file\n{USAGE}"));
    };
    let baseline_text = std::fs::read_to_string(&baseline_path)
        .map_err(|e| format!("{baseline_path}: {e}"))?;
    let baseline =
        parse_baseline(&baseline_text).map_err(|e| format!("{baseline_path}: {e}"))?;
    let bench_text =
        std::fs::read_to_string(bench_path).map_err(|e| format!("{bench_path}: {e}"))?;
    let outcomes = check(&baseline, &bench_text).map_err(|e| format!("{bench_path}: {e}"))?;

    let mut failures = 0u32;
    for o in &outcomes {
        println!("{:4} {}: {}", o.status, o.name, o.detail);
        if !o.passed() {
            failures += 1;
        }
    }
    if failures > 0 {
        println!("{failures} of {} pin(s) FAILED", outcomes.len());
        return Ok(1);
    }
    println!("all {} pin(s) pass", outcomes.len());
    Ok(0)
}
