//! Fleet rollups: the bounded-memory aggregate the streaming reducer
//! folds event streams into.
//!
//! A [`Rollup`] holds, for an arbitrary number of input events:
//!
//! * four fleet-wide [`Sketch`]es ([`FLEET_SKETCHES`]) — SNR, frame
//!   airtime, stall duration, realignment latency;
//! * one [`SessionRollup`] per session — frame/glitch/realign counters
//!   and a mode-transition matrix;
//! * nothing else. Memory is `O(sessions + modes² + sketch buckets)`,
//!   independent of event count.
//!
//! Rollups merge ([`Rollup::merge`]) so streams can be reduced
//! per-file in parallel and combined, and serialise to a single JSON
//! object with sorted keys ([`Rollup::write_json`]) so the result is
//! byte-identical across runs, thread counts, and machines — fit for
//! golden pinning. [`diff_json`] reports the structural difference of
//! two such documents path by path.

use crate::jsonv::Json;
use crate::metrics::{write_json_f64, MergeError};
use crate::sketch::{Sketch, SketchSpec, Spacing};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The fleet sketch layouts, in output (alphabetical) order. Changing a
/// layout is a schema change: rollups only merge when specs match.
pub const FLEET_SKETCHES: [(&str, SketchSpec); 4] = [
    (
        // Per-frame wireless airtime: 100 µs .. 100 ms, log-spaced.
        "airtime_ns",
        SketchSpec {
            lo: 1e5,
            hi: 1e8,
            buckets: 60,
            spacing: Spacing::Log,
        },
    ),
    (
        // Realignment cost per event: 1 ms .. 10 s, log-spaced.
        "realign_cost_ns",
        SketchSpec {
            lo: 1e6,
            hi: 1e10,
            buckets: 48,
            spacing: Spacing::Log,
        },
    ),
    (
        // Frame SNR in dB — already logarithmic, so linear buckets.
        "snr_db",
        SketchSpec {
            lo: -10.0,
            hi: 50.0,
            buckets: 120,
            spacing: Spacing::Linear,
        },
    ),
    (
        // Realignment stall spans: 1 ms .. 10 s, log-spaced.
        "stall_ns",
        SketchSpec {
            lo: 1e6,
            hi: 1e10,
            buckets: 48,
            spacing: Spacing::Log,
        },
    ),
];

/// Per-session aggregate: counters plus the mode-transition matrix.
/// The matrix key is `(from, to)`; a session's first mode arrives as a
/// transition from `"start"`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionRollup {
    /// Total event lines attributed to this session.
    pub events: u64,
    /// Frames delivered on time.
    pub frames_delivered: u64,
    /// Frames attempted.
    pub frames_total: u64,
    /// Contiguous missed-frame runs that ended (`stall_recovered`).
    pub glitches: u64,
    /// Frames lost inside those runs.
    pub glitch_frames: u64,
    /// Mode switches after the first mode was established.
    pub mode_switches: u64,
    /// Total realignment cost, ns.
    pub realign_time_ns: u64,
    /// Realignment events.
    pub realigns: u64,
    /// Closed `realign_stall` spans.
    pub stall_spans: u64,
    /// Total closed `realign_stall` span time, ns.
    pub stall_time_ns: u64,
    /// Mode-transition counts, keyed `(from, to)`.
    pub transitions: BTreeMap<(String, String), u64>,
}

impl SessionRollup {
    fn absorb(&mut self, other: &SessionRollup) {
        self.events += other.events;
        self.frames_delivered += other.frames_delivered;
        self.frames_total += other.frames_total;
        self.glitches += other.glitches;
        self.glitch_frames += other.glitch_frames;
        self.mode_switches += other.mode_switches;
        self.realign_time_ns += other.realign_time_ns;
        self.realigns += other.realigns;
        self.stall_spans += other.stall_spans;
        self.stall_time_ns += other.stall_time_ns;
        for (k, n) in &other.transitions {
            *self.transitions.entry(k.clone()).or_insert(0) += n;
        }
    }

    /// Writes the scalar counters up to and including `realigns`
    /// (everything alphabetically before the fleet-only keys).
    fn write_scalars_head(&self, out: &mut String) {
        let _ = write!(
            out,
            "\"events\":{},\"frames_delivered\":{},\"frames_total\":{},\
             \"glitch_frames\":{},\"glitches\":{},\"mode_switches\":{},\
             \"realign_time_ns\":{},\"realigns\":{}",
            self.events,
            self.frames_delivered,
            self.frames_total,
            self.glitch_frames,
            self.glitches,
            self.mode_switches,
            self.realign_time_ns,
            self.realigns,
        );
    }

    fn write_scalars_tail(&self, out: &mut String) {
        let _ = write!(
            out,
            "\"stall_spans\":{},\"stall_time_ns\":{},",
            self.stall_spans, self.stall_time_ns
        );
        write_transitions(out, &self.transitions);
    }

    fn write_json(&self, out: &mut String) {
        out.push('{');
        self.write_scalars_head(out);
        out.push(',');
        self.write_scalars_tail(out);
        out.push('}');
    }
}

fn write_transitions(out: &mut String, m: &BTreeMap<(String, String), u64>) {
    out.push_str("\"transitions\":{");
    for (i, ((from, to), n)) in m.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{from}->{to}\":{n}");
    }
    out.push('}');
}

/// The full fleet aggregate (see module docs).
#[derive(Debug, Clone)]
pub struct Rollup {
    sessions: BTreeMap<u64, SessionRollup>,
    sketches: [Sketch; 4],
}

impl Default for Rollup {
    fn default() -> Self {
        Rollup::new()
    }
}

impl Rollup {
    /// An empty rollup with the standard [`FLEET_SKETCHES`] layouts.
    pub fn new() -> Self {
        let mk = |i: usize| Sketch::new(FLEET_SKETCHES[i].1); // lint: called with i in 0..4 below; FLEET_SKETCHES has four entries
        Rollup {
            sessions: BTreeMap::new(),
            sketches: [mk(0), mk(1), mk(2), mk(3)],
        }
    }

    /// The per-session aggregates, keyed by session id.
    pub fn sessions(&self) -> &BTreeMap<u64, SessionRollup> {
        &self.sessions
    }

    /// The fleet sketch named `name` (one of [`FLEET_SKETCHES`]).
    pub fn sketch(&self, name: &str) -> Option<&Sketch> {
        FLEET_SKETCHES
            .iter()
            .position(|(n, _)| *n == name)
            .map(|i| &self.sketches[i])
    }

    pub(crate) fn session_mut(&mut self, id: u64) -> &mut SessionRollup {
        self.sessions.entry(id).or_default()
    }

    pub(crate) fn observe(&mut self, sketch: usize, v: f64) {
        self.sketches[sketch].observe(v);
    }

    /// The fleet-wide aggregate: every session's counters and
    /// transition matrix summed.
    pub fn fleet_totals(&self) -> SessionRollup {
        let mut all = SessionRollup::default();
        for s in self.sessions.values() {
            all.absorb(s);
        }
        all
    }

    /// Merges `other` into `self`. Errors (without partial effect on the
    /// sketches) when sketch layouts differ — i.e. the rollups came from
    /// different schema versions.
    pub fn merge(&mut self, other: &Rollup) -> Result<(), MergeError> {
        // Validate every layout before mutating any sketch, so a schema
        // mismatch cannot leave `self` half-merged.
        for (a, b) in self.sketches.iter().zip(&other.sketches) {
            if a.spec() != b.spec() {
                return Err(MergeError::new(
                    a.histogram().edges(),
                    b.histogram().edges(),
                ));
            }
        }
        for (a, b) in self.sketches.iter_mut().zip(&other.sketches) {
            a.try_merge(b)?;
        }
        for (id, s) in &other.sessions {
            self.session_mut(*id).absorb(s);
        }
        Ok(())
    }

    /// Serialises the rollup as one JSON object with sorted keys:
    /// `{"fleet":{…},"schema":1,"sessions":{"0":{…},…}}`. Deterministic:
    /// the same events in the same per-session order produce identical
    /// bytes regardless of how the streams were split across files or
    /// threads.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let fleet = self.fleet_totals();
        out.push_str("{\"fleet\":{");
        fleet.write_scalars_head(&mut out);
        let _ = write!(&mut out, ",\"sessions\":{},\"sketches\":{{", self.sessions.len());
        for (i, (name, _)) in FLEET_SKETCHES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(&mut out, "\"{name}\":");
            self.sketches[i].write_json(&mut out);
        }
        out.push_str("},");
        fleet.write_scalars_tail(&mut out);
        out.push_str("},\"schema\":1,\"sessions\":{");
        for (i, (id, s)) in self.sessions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(&mut out, "\"{id}\":");
            s.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

/// One structural difference between two JSON documents: the path where
/// they diverge and what each side holds there (`None` = absent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffEntry {
    /// Dotted path from the root, array elements as `[i]`.
    pub path: String,
    /// Rendering of the left value at `path`, if present.
    pub left: Option<String>,
    /// Rendering of the right value at `path`, if present.
    pub right: Option<String>,
}

impl std::fmt::Display for DiffEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let absent = "(absent)".to_string();
        write!(
            f,
            "{}: {} != {}",
            self.path,
            self.left.as_ref().unwrap_or(&absent),
            self.right.as_ref().unwrap_or(&absent),
        )
    }
}

fn render(j: &Json) -> String {
    match j {
        Json::Null => "null".to_string(),
        Json::Bool(b) => b.to_string(),
        Json::Num(x) => {
            let mut s = String::new();
            write_json_f64(&mut s, *x);
            s
        }
        Json::Str(s) => format!("\"{s}\""),
        Json::Arr(a) => format!("[…{} items]", a.len()),
        Json::Obj(o) => format!("{{…{} keys}}", o.len()),
    }
}

fn diff_walk(path: &str, a: &Json, b: &Json, out: &mut Vec<DiffEntry>) {
    match (a, b) {
        (Json::Obj(ao), Json::Obj(bo)) => {
            for (k, av) in ao {
                let sub = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                match bo.iter().find(|(bk, _)| bk == k) {
                    Some((_, bv)) => diff_walk(&sub, av, bv, out),
                    None => out.push(DiffEntry {
                        path: sub,
                        left: Some(render(av)),
                        right: None,
                    }),
                }
            }
            for (k, bv) in bo {
                if !ao.iter().any(|(ak, _)| ak == k) {
                    let sub = if path.is_empty() {
                        k.clone()
                    } else {
                        format!("{path}.{k}")
                    };
                    out.push(DiffEntry {
                        path: sub,
                        left: None,
                        right: Some(render(bv)),
                    });
                }
            }
        }
        (Json::Arr(aa), Json::Arr(ba)) => {
            for (i, pair) in aa.iter().zip(ba).enumerate() {
                diff_walk(&format!("{path}[{i}]"), pair.0, pair.1, out);
            }
            for (i, av) in aa.iter().enumerate().skip(ba.len()) {
                out.push(DiffEntry {
                    path: format!("{path}[{i}]"),
                    left: Some(render(av)),
                    right: None,
                });
            }
            for (i, bv) in ba.iter().enumerate().skip(aa.len()) {
                out.push(DiffEntry {
                    path: format!("{path}[{i}]"),
                    left: None,
                    right: Some(render(bv)),
                });
            }
        }
        _ => {
            let same = match (a, b) {
                (Json::Null, Json::Null) => true,
                (Json::Bool(x), Json::Bool(y)) => x == y,
                (Json::Num(x), Json::Num(y)) => x.to_bits() == y.to_bits(),
                (Json::Str(x), Json::Str(y)) => x == y,
                _ => false,
            };
            if !same {
                out.push(DiffEntry {
                    path: path.to_string(),
                    left: Some(render(a)),
                    right: Some(render(b)),
                });
            }
        }
    }
}

/// Structurally compares two JSON documents, returning one entry per
/// diverging path (empty = identical). Object key order is ignored;
/// numbers compare bit-exactly (so `-0.0 != 0.0`, and `null`-encoded
/// non-finites only equal `null`).
pub fn diff_json(a: &Json, b: &Json) -> Vec<DiffEntry> {
    let mut out = Vec::new();
    diff_walk("", a, b, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Rollup {
        let mut r = Rollup::new();
        {
            let s = r.session_mut(0);
            s.events = 10;
            s.frames_total = 4;
            s.frames_delivered = 3;
            s.mode_switches = 1;
            *s.transitions
                .entry(("start".into(), "los".into()))
                .or_insert(0) += 1;
            *s.transitions
                .entry(("los".into(), "reflector0".into()))
                .or_insert(0) += 1;
        }
        r.observe(2, 21.5);
        r.observe(2, 24.0);
        r
    }

    #[test]
    fn json_shape_is_sorted_and_parses() {
        let r = sample();
        let json = r.to_json();
        let doc = Json::parse(&json).expect("rollup JSON parses");
        assert_eq!(
            doc.get("schema").and_then(Json::as_u64),
            Some(1),
            "{json}"
        );
        let fleet = doc.get("fleet").expect("fleet");
        assert_eq!(fleet.get("sessions").and_then(Json::as_u64), Some(1));
        assert_eq!(fleet.get("frames_total").and_then(Json::as_u64), Some(4));
        let snr = fleet
            .get("sketches")
            .and_then(|s| s.get("snr_db"))
            .expect("snr sketch");
        assert_eq!(snr.get("count").and_then(Json::as_u64), Some(2));
        // Keys sorted at every level we emit.
        let top: Vec<&str> = doc
            .fields()
            .expect("object")
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(top, ["fleet", "schema", "sessions"]);
        let fleet_keys: Vec<&str> = fleet
            .fields()
            .expect("object")
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        let mut sorted = fleet_keys.clone();
        sorted.sort_unstable();
        assert_eq!(fleet_keys, sorted);
    }

    #[test]
    fn transitions_render_as_from_arrow_to() {
        let json = sample().to_json();
        assert!(
            json.contains("\"transitions\":{\"los->reflector0\":1,\"start->los\":1}"),
            "{json}"
        );
    }

    #[test]
    fn merge_equals_sequential_fold() {
        let mut a = sample();
        let b = sample();
        a.merge(&b).expect("same schema");
        let doc = Json::parse(&a.to_json()).expect("parses");
        let fleet = doc.get("fleet").expect("fleet");
        assert_eq!(fleet.get("frames_total").and_then(Json::as_u64), Some(8));
        assert_eq!(fleet.get("sessions").and_then(Json::as_u64), Some(1));
        let snr = fleet.get("sketches").and_then(|s| s.get("snr_db")).expect("snr");
        assert_eq!(snr.get("count").and_then(Json::as_u64), Some(4));
    }

    #[test]
    fn diff_reports_changed_and_missing_paths() {
        let a = Json::parse(r#"{"x":{"y":1,"z":2},"v":[1,2]}"#).expect("a");
        let b = Json::parse(r#"{"x":{"y":1,"w":3},"v":[1]}"#).expect("b");
        let d = diff_json(&a, &b);
        let paths: Vec<&str> = d.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, ["x.z", "x.w", "v[1]"]);
        assert_eq!(d[0].right, None);
        assert_eq!(d[1].left, None);
        assert!(d[2].to_string().contains("v[1]: 2 != (absent)"), "{}", d[2]);
    }

    #[test]
    fn diff_of_identical_rollups_is_empty() {
        let a = Json::parse(&sample().to_json()).expect("a");
        let b = Json::parse(&sample().to_json()).expect("b");
        assert!(diff_json(&a, &b).is_empty());
    }

    #[test]
    fn merge_rejects_mismatched_schema() {
        let mut a = Rollup::new();
        let mut b = Rollup::new();
        b.sketches[0] = Sketch::new(SketchSpec::log(1.0, 10.0, 3));
        assert!(a.merge(&b).is_err());
        // And self is untouched: still merges with a clean peer.
        assert!(a.merge(&Rollup::new()).is_ok());
    }
}
