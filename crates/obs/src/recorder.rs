//! Event sinks: where the instrumented stack sends its timeline.
//!
//! [`Recorder`] is the trait the hot paths hold (`&mut dyn Recorder`);
//! three sinks cover the use cases:
//!
//! * [`NullRecorder`] — observability off. `enabled()` is `false`, so
//!   instrumented code skips building events entirely; the cost is one
//!   virtual call per would-be event.
//! * [`MemoryRecorder`] — in-memory capture for tests and analysis.
//! * [`JsonlWriter`] — streams one JSON object per line to any
//!   `io::Write` (a file, a `Vec<u8>`, stdout).
//!
//! Durations are first-class via *spans*: [`Recorder::start_span`] mints
//! a [`SpanId`] and emits a `span_start` event, [`Recorder::end_span`]
//! closes it with a `span_end` event at the end time. Because both carry
//! sim-time stamps, span durations are exact simulation quantities, not
//! wall-clock measurements.

use crate::event::Event;
use movr_sim::SimTime;
use std::io;

/// Identifier pairing a `span_start` with its `span_end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// A sink for structured events.
pub trait Recorder {
    /// Whether events will be kept. Hot paths guard event construction
    /// with this so a disabled recorder costs no allocations.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn record(&mut self, event: Event);

    /// Opens a sim-time span named `name` at `t`, emitting a
    /// `span_start` event carrying the span id.
    fn start_span(&mut self, t: SimTime, name: &'static str) -> SpanId;

    /// Closes span `id` at `t` with a `span_end` event.
    fn end_span(&mut self, t: SimTime, name: &'static str, id: SpanId);
}

fn span_event(kind: &'static str, t: SimTime, name: &'static str, id: SpanId) -> Event {
    Event::new(t, kind).with("span", name).with("span_id", id.0)
}

/// Observability off: drops everything, reports `enabled() == false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&mut self, _event: Event) {}
    fn start_span(&mut self, _t: SimTime, _name: &'static str) -> SpanId {
        SpanId(0)
    }
    fn end_span(&mut self, _t: SimTime, _name: &'static str, _id: SpanId) {}
}

/// Captures events in memory, in arrival order.
#[derive(Debug, Clone, Default)]
pub struct MemoryRecorder {
    events: Vec<Event>,
    next_span: u64,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty recorder whose span-id counter starts at `next`. A
    /// recorder picking up after a checkpoint must continue the original
    /// numbering — span ids appear verbatim in the event stream, so a
    /// reset counter would make the resumed timeline diverge.
    pub fn with_next_span_id(next: u64) -> Self {
        MemoryRecorder {
            events: Vec::new(),
            next_span: next,
        }
    }

    /// The id the next [`Recorder::start_span`] will mint.
    pub fn next_span_id(&self) -> u64 {
        self.next_span
    }

    /// All recorded events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one kind, in order.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Closed spans as `(name, start, end)`, in start order. Unclosed
    /// spans are omitted.
    pub fn spans(&self) -> Vec<(&'static str, SimTime, SimTime)> {
        use crate::event::Value;
        let id_of = |e: &Event| match e.field("span_id") {
            Some(&Value::U64(id)) => Some(id),
            _ => None,
        };
        let name_of = |e: &Event| match e.field("span") {
            Some(&Value::Str(s)) => Some(s),
            _ => None,
        };
        let mut out = Vec::new();
        for start in self.of_kind("span_start") {
            let (Some(id), Some(name)) = (id_of(start), name_of(start)) else {
                continue;
            };
            let end = self
                .of_kind("span_end")
                .find(|e| id_of(e) == Some(id));
            if let Some(end) = end {
                out.push((name, start.t, end.t));
            }
        }
        out
    }

    /// The whole capture rendered as JSONL (one event per line, trailing
    /// newline included) — byte-identical to what a [`JsonlWriter`] fed
    /// the same events would have written.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.json_line());
            out.push('\n');
        }
        out
    }
}

impl Recorder for MemoryRecorder {
    fn record(&mut self, event: Event) {
        self.events.push(event);
    }
    fn start_span(&mut self, t: SimTime, name: &'static str) -> SpanId {
        let id = SpanId(self.next_span);
        self.next_span += 1;
        self.events.push(span_event("span_start", t, name, id));
        id
    }
    fn end_span(&mut self, t: SimTime, name: &'static str, id: SpanId) {
        self.events.push(span_event("span_end", t, name, id));
    }
}

/// Error surfaced by [`JsonlWriter::finish`]: the sink failed while
/// writing or flushing the timeline, at the 1-based line given. Every
/// event offered after the first failure was dropped (the stream is
/// already truncated; appending past a hole would corrupt it further).
#[derive(Debug)]
pub struct JsonlSinkError {
    /// 1-based line number of the write that failed (for a flush
    /// failure, the number of the line that could not be committed + 1).
    pub line: u64,
    /// The underlying I/O error.
    pub error: io::Error,
}

impl std::fmt::Display for JsonlSinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSONL sink failed at line {}: {}", self.line, self.error)
    }
}

impl std::error::Error for JsonlSinkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Streams events as JSON lines to an `io::Write` sink.
///
/// Sink failures (full disk, closed pipe) do not panic and cannot be
/// reported mid-stream — [`Recorder`]'s methods return nothing, by
/// design, so instrumented hot paths stay infallible. Instead the first
/// error is latched, all subsequent events are dropped, and the failure
/// surfaces as a structured [`JsonlSinkError`] from
/// [`JsonlWriter::finish`] (or early via [`JsonlWriter::sink_error`]).
/// Callers that discard the writer without calling `finish` forfeit the
/// error — `finish` is the durability check.
#[derive(Debug)]
pub struct JsonlWriter<W: io::Write> {
    sink: W,
    next_span: u64,
    lines: u64,
    error: Option<JsonlSinkError>,
}

impl<W: io::Write> JsonlWriter<W> {
    /// Wraps a writer.
    pub fn new(sink: W) -> Self {
        JsonlWriter {
            sink,
            next_span: 0,
            lines: 0,
            error: None,
        }
    }

    /// Wraps a writer with the span-id counter starting at `next`, so a
    /// resumed session's stream continues the original numbering (see
    /// [`MemoryRecorder::with_next_span_id`]).
    pub fn with_next_span_id(sink: W, next: u64) -> Self {
        JsonlWriter {
            sink,
            next_span: next,
            lines: 0,
            error: None,
        }
    }

    /// The id the next [`Recorder::start_span`] will mint.
    pub fn next_span_id(&self) -> u64 {
        self.next_span
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The latched sink failure, if any — for callers that want to stop
    /// a long run early instead of discovering the truncation at
    /// [`JsonlWriter::finish`].
    pub fn sink_error(&self) -> Option<&JsonlSinkError> {
        self.error.as_ref()
    }

    /// Flushes and returns the underlying writer, or the first write or
    /// flush error the sink produced. This is the durability checkpoint:
    /// a timeline is only complete once `finish` returned `Ok`.
    pub fn finish(mut self) -> Result<W, JsonlSinkError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        match self.sink.flush() {
            Ok(()) => Ok(self.sink),
            Err(error) => Err(JsonlSinkError {
                line: self.lines + 1,
                error,
            }),
        }
    }

    fn write_line(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let mut line = event.json_line();
        line.push('\n');
        match self.sink.write_all(line.as_bytes()) {
            Ok(()) => self.lines += 1,
            Err(error) => {
                self.error = Some(JsonlSinkError {
                    line: self.lines + 1,
                    error,
                });
            }
        }
    }
}

impl<W: io::Write> Recorder for JsonlWriter<W> {
    fn record(&mut self, event: Event) {
        self.write_line(&event);
    }
    fn start_span(&mut self, t: SimTime, name: &'static str) -> SpanId {
        let id = SpanId(self.next_span);
        self.next_span += 1;
        self.write_line(&span_event("span_start", t, name, id));
        id
    }
    fn end_span(&mut self, t: SimTime, name: &'static str, id: SpanId) {
        self.write_line(&span_event("span_end", t, name, id));
    }
}

/// Tags every event passing through with a `session` field, so streams
/// from many sessions can be concatenated (or reduced together) without
/// losing attribution. Span events are minted here — with a per-session
/// id counter — rather than delegated, so they carry the tag too; span
/// ids are therefore unique *per session*, and the fleet reducer keys
/// open spans by `(session, span_id)`.
///
/// The adapter appends the tag as the last field of each event and
/// never touches timestamps or ordering, so a tagged stream is the
/// untagged stream plus one field per line.
pub struct SessionTagged<'a> {
    inner: &'a mut dyn Recorder,
    session: u64,
    next_span: u64,
}

impl std::fmt::Debug for SessionTagged<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionTagged")
            .field("session", &self.session)
            .field("next_span", &self.next_span)
            .finish_non_exhaustive()
    }
}

impl<'a> SessionTagged<'a> {
    /// Tags everything recorded through `inner` with `session`.
    pub fn new(inner: &'a mut dyn Recorder, session: u64) -> Self {
        SessionTagged {
            inner,
            session,
            next_span: 0,
        }
    }

    /// The session id applied to every event.
    pub fn session(&self) -> u64 {
        self.session
    }
}

impl Recorder for SessionTagged<'_> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }
    fn record(&mut self, event: Event) {
        self.inner.record(event.with("session", self.session));
    }
    fn start_span(&mut self, t: SimTime, name: &'static str) -> SpanId {
        let id = SpanId(self.next_span);
        self.next_span += 1;
        self.record(span_event("span_start", t, name, id));
        id
    }
    fn end_span(&mut self, t: SimTime, name: &'static str, id: SpanId) {
        self.record(span_event("span_end", t, name, id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(rec: &mut dyn Recorder) {
        let id = rec.start_span(SimTime::from_millis(1), "sweep");
        rec.record(Event::new(SimTime::from_millis(2), "probe").with("power_dbm", -42.5));
        rec.end_span(SimTime::from_millis(3), "sweep", id);
    }

    #[test]
    fn null_recorder_is_disabled_and_silent() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        feed(&mut r);
        assert_eq!(r.start_span(SimTime::ZERO, "x"), SpanId(0));
    }

    #[test]
    fn memory_recorder_captures_in_order() {
        let mut r = MemoryRecorder::new();
        assert!(r.enabled());
        feed(&mut r);
        assert_eq!(r.len(), 3);
        assert_eq!(r.events()[0].kind, "span_start");
        assert_eq!(r.events()[1].kind, "probe");
        assert_eq!(r.events()[2].kind, "span_end");
        assert_eq!(r.of_kind("probe").count(), 1);
    }

    #[test]
    fn spans_pair_start_and_end() {
        let mut r = MemoryRecorder::new();
        feed(&mut r);
        let spans = r.spans();
        assert_eq!(
            spans,
            vec![("sweep", SimTime::from_millis(1), SimTime::from_millis(3))]
        );
        // An unclosed span is omitted.
        r.start_span(SimTime::from_millis(4), "dangling");
        assert_eq!(r.spans().len(), 1);
    }

    #[test]
    fn jsonl_writer_matches_memory_rendering() {
        let mut mem = MemoryRecorder::new();
        feed(&mut mem);
        let mut w = JsonlWriter::new(Vec::new());
        feed(&mut w);
        assert_eq!(w.lines(), 3);
        let bytes = w.finish().expect("in-memory sink cannot fail");
        assert_eq!(String::from_utf8(bytes).unwrap(), mem.to_jsonl());
    }

    /// A writer that accepts `good` writes, then fails every later one.
    struct FailingSink {
        good: usize,
        written: Vec<u8>,
    }

    impl io::Write for FailingSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.good == 0 {
                return Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"));
            }
            self.good -= 1;
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn sink_failure_is_latched_and_surfaces_on_finish() {
        let mut w = JsonlWriter::new(FailingSink {
            good: 2,
            written: Vec::new(),
        });
        feed(&mut w); // 3 events: the third write fails
        assert_eq!(w.lines(), 2);
        let err = w.sink_error().expect("failure must be latched");
        assert_eq!(err.line, 3);
        let err = match w.finish() {
            Ok(_) => panic!("finish must report the latched failure"),
            Err(e) => e,
        };
        assert_eq!(err.line, 3);
        assert_eq!(err.error.kind(), io::ErrorKind::StorageFull);
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn events_after_a_sink_failure_are_dropped_not_written() {
        let mut w = JsonlWriter::new(FailingSink {
            good: 1,
            written: Vec::new(),
        });
        feed(&mut w);
        feed(&mut w); // still latched: nothing more lands
        assert_eq!(w.lines(), 1);
        assert!(w.finish().is_err());
    }

    #[test]
    fn session_tagged_appends_session_to_every_event() {
        let mut mem = MemoryRecorder::new();
        let mut tagged = SessionTagged::new(&mut mem, 7);
        assert_eq!(tagged.session(), 7);
        feed(&mut tagged);
        assert_eq!(mem.len(), 3);
        use crate::event::Value;
        for e in mem.events() {
            assert_eq!(e.field("session"), Some(&Value::U64(7)), "{}", e.json_line());
            // The tag is the last field, so untagged lines are a prefix.
            assert_eq!(e.fields.last().map(|(n, _)| *n), Some("session"));
        }
        // Span pairing still works on the tagged stream.
        assert_eq!(mem.spans().len(), 1);
    }

    #[test]
    fn session_tagged_span_ids_count_per_session() {
        let mut mem = MemoryRecorder::new();
        let mut a = SessionTagged::new(&mut mem, 1);
        assert_eq!(a.start_span(SimTime::ZERO, "x"), SpanId(0));
        assert_eq!(a.start_span(SimTime::ZERO, "y"), SpanId(1));
        let mut b = SessionTagged::new(&mut mem, 2);
        assert_eq!(b.start_span(SimTime::ZERO, "z"), SpanId(0));
    }

    #[test]
    fn session_tagged_respects_inner_enabled() {
        let mut null = NullRecorder;
        let tagged = SessionTagged::new(&mut null, 3);
        assert!(!tagged.enabled());
        let mut mem = MemoryRecorder::new();
        let tagged = SessionTagged::new(&mut mem, 3);
        assert!(tagged.enabled());
    }

    #[test]
    fn span_counter_continues_across_recorders() {
        // Phase A records two spans, then a fresh recorder seeded with
        // A's counter continues the numbering exactly.
        let mut a = MemoryRecorder::new();
        a.start_span(SimTime::ZERO, "one");
        a.start_span(SimTime::ZERO, "two");
        let mut b = MemoryRecorder::with_next_span_id(a.next_span_id());
        assert_eq!(b.start_span(SimTime::ZERO, "three"), SpanId(2));

        let mut w = JsonlWriter::with_next_span_id(Vec::new(), 2);
        assert_eq!(w.next_span_id(), 2);
        assert_eq!(w.start_span(SimTime::ZERO, "three"), SpanId(2));
        // The rendered line is identical to the uninterrupted recorder's.
        let mut full = MemoryRecorder::new();
        full.start_span(SimTime::ZERO, "one");
        full.start_span(SimTime::ZERO, "two");
        full.start_span(SimTime::ZERO, "three");
        let joined = a.to_jsonl() + &b.to_jsonl();
        assert_eq!(joined, full.to_jsonl());
    }

    #[test]
    fn span_ids_are_unique_per_recorder() {
        let mut r = MemoryRecorder::new();
        let a = r.start_span(SimTime::ZERO, "a");
        let b = r.start_span(SimTime::ZERO, "b");
        assert_ne!(a, b);
    }
}
