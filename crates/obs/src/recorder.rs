//! Event sinks: where the instrumented stack sends its timeline.
//!
//! [`Recorder`] is the trait the hot paths hold (`&mut dyn Recorder`);
//! three sinks cover the use cases:
//!
//! * [`NullRecorder`] — observability off. `enabled()` is `false`, so
//!   instrumented code skips building events entirely; the cost is one
//!   virtual call per would-be event.
//! * [`MemoryRecorder`] — in-memory capture for tests and analysis.
//! * [`JsonlWriter`] — streams one JSON object per line to any
//!   `io::Write` (a file, a `Vec<u8>`, stdout).
//!
//! Durations are first-class via *spans*: [`Recorder::start_span`] mints
//! a [`SpanId`] and emits a `span_start` event, [`Recorder::end_span`]
//! closes it with a `span_end` event at the end time. Because both carry
//! sim-time stamps, span durations are exact simulation quantities, not
//! wall-clock measurements.

use crate::event::Event;
use movr_sim::SimTime;
use std::io;

/// Identifier pairing a `span_start` with its `span_end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// A sink for structured events.
pub trait Recorder {
    /// Whether events will be kept. Hot paths guard event construction
    /// with this so a disabled recorder costs no allocations.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn record(&mut self, event: Event);

    /// Opens a sim-time span named `name` at `t`, emitting a
    /// `span_start` event carrying the span id.
    fn start_span(&mut self, t: SimTime, name: &'static str) -> SpanId;

    /// Closes span `id` at `t` with a `span_end` event.
    fn end_span(&mut self, t: SimTime, name: &'static str, id: SpanId);
}

fn span_event(kind: &'static str, t: SimTime, name: &'static str, id: SpanId) -> Event {
    Event::new(t, kind).with("span", name).with("span_id", id.0)
}

/// Observability off: drops everything, reports `enabled() == false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&mut self, _event: Event) {}
    fn start_span(&mut self, _t: SimTime, _name: &'static str) -> SpanId {
        SpanId(0)
    }
    fn end_span(&mut self, _t: SimTime, _name: &'static str, _id: SpanId) {}
}

/// Captures events in memory, in arrival order.
#[derive(Debug, Clone, Default)]
pub struct MemoryRecorder {
    events: Vec<Event>,
    next_span: u64,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty recorder whose span-id counter starts at `next`. A
    /// recorder picking up after a checkpoint must continue the original
    /// numbering — span ids appear verbatim in the event stream, so a
    /// reset counter would make the resumed timeline diverge.
    pub fn with_next_span_id(next: u64) -> Self {
        MemoryRecorder {
            events: Vec::new(),
            next_span: next,
        }
    }

    /// The id the next [`Recorder::start_span`] will mint.
    pub fn next_span_id(&self) -> u64 {
        self.next_span
    }

    /// All recorded events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one kind, in order.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Closed spans as `(name, start, end)`, in start order. Unclosed
    /// spans are omitted.
    pub fn spans(&self) -> Vec<(&'static str, SimTime, SimTime)> {
        use crate::event::Value;
        let id_of = |e: &Event| match e.field("span_id") {
            Some(&Value::U64(id)) => Some(id),
            _ => None,
        };
        let name_of = |e: &Event| match e.field("span") {
            Some(&Value::Str(s)) => Some(s),
            _ => None,
        };
        let mut out = Vec::new();
        for start in self.of_kind("span_start") {
            let (Some(id), Some(name)) = (id_of(start), name_of(start)) else {
                continue;
            };
            let end = self
                .of_kind("span_end")
                .find(|e| id_of(e) == Some(id));
            if let Some(end) = end {
                out.push((name, start.t, end.t));
            }
        }
        out
    }

    /// The whole capture rendered as JSONL (one event per line, trailing
    /// newline included) — byte-identical to what a [`JsonlWriter`] fed
    /// the same events would have written.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.json_line());
            out.push('\n');
        }
        out
    }
}

impl Recorder for MemoryRecorder {
    fn record(&mut self, event: Event) {
        self.events.push(event);
    }
    fn start_span(&mut self, t: SimTime, name: &'static str) -> SpanId {
        let id = SpanId(self.next_span);
        self.next_span += 1;
        self.events.push(span_event("span_start", t, name, id));
        id
    }
    fn end_span(&mut self, t: SimTime, name: &'static str, id: SpanId) {
        self.events.push(span_event("span_end", t, name, id));
    }
}

/// Streams events as JSON lines to an `io::Write` sink.
///
/// # Panics
/// Panics if the underlying writer fails: a broken timeline sink mid-run
/// would silently truncate the record, which is worse than stopping.
#[derive(Debug)]
pub struct JsonlWriter<W: io::Write> {
    sink: W,
    next_span: u64,
    lines: u64,
}

impl<W: io::Write> JsonlWriter<W> {
    /// Wraps a writer.
    pub fn new(sink: W) -> Self {
        JsonlWriter {
            sink,
            next_span: 0,
            lines: 0,
        }
    }

    /// Wraps a writer with the span-id counter starting at `next`, so a
    /// resumed session's stream continues the original numbering (see
    /// [`MemoryRecorder::with_next_span_id`]).
    pub fn with_next_span_id(sink: W, next: u64) -> Self {
        JsonlWriter {
            sink,
            next_span: next,
            lines: 0,
        }
    }

    /// The id the next [`Recorder::start_span`] will mint.
    pub fn next_span_id(&self) -> u64 {
        self.next_span
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        self.sink.flush().expect("JSONL sink flush failed");
        self.sink
    }

    fn write_line(&mut self, event: &Event) {
        let mut line = event.json_line();
        line.push('\n');
        self.sink
            .write_all(line.as_bytes())
            .expect("JSONL sink write failed");
        self.lines += 1;
    }
}

impl<W: io::Write> Recorder for JsonlWriter<W> {
    fn record(&mut self, event: Event) {
        self.write_line(&event);
    }
    fn start_span(&mut self, t: SimTime, name: &'static str) -> SpanId {
        let id = SpanId(self.next_span);
        self.next_span += 1;
        self.write_line(&span_event("span_start", t, name, id));
        id
    }
    fn end_span(&mut self, t: SimTime, name: &'static str, id: SpanId) {
        self.write_line(&span_event("span_end", t, name, id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(rec: &mut dyn Recorder) {
        let id = rec.start_span(SimTime::from_millis(1), "sweep");
        rec.record(Event::new(SimTime::from_millis(2), "probe").with("power_dbm", -42.5));
        rec.end_span(SimTime::from_millis(3), "sweep", id);
    }

    #[test]
    fn null_recorder_is_disabled_and_silent() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        feed(&mut r);
        assert_eq!(r.start_span(SimTime::ZERO, "x"), SpanId(0));
    }

    #[test]
    fn memory_recorder_captures_in_order() {
        let mut r = MemoryRecorder::new();
        assert!(r.enabled());
        feed(&mut r);
        assert_eq!(r.len(), 3);
        assert_eq!(r.events()[0].kind, "span_start");
        assert_eq!(r.events()[1].kind, "probe");
        assert_eq!(r.events()[2].kind, "span_end");
        assert_eq!(r.of_kind("probe").count(), 1);
    }

    #[test]
    fn spans_pair_start_and_end() {
        let mut r = MemoryRecorder::new();
        feed(&mut r);
        let spans = r.spans();
        assert_eq!(
            spans,
            vec![("sweep", SimTime::from_millis(1), SimTime::from_millis(3))]
        );
        // An unclosed span is omitted.
        r.start_span(SimTime::from_millis(4), "dangling");
        assert_eq!(r.spans().len(), 1);
    }

    #[test]
    fn jsonl_writer_matches_memory_rendering() {
        let mut mem = MemoryRecorder::new();
        feed(&mut mem);
        let mut w = JsonlWriter::new(Vec::new());
        feed(&mut w);
        assert_eq!(w.lines(), 3);
        let bytes = w.into_inner();
        assert_eq!(String::from_utf8(bytes).unwrap(), mem.to_jsonl());
    }

    #[test]
    fn span_counter_continues_across_recorders() {
        // Phase A records two spans, then a fresh recorder seeded with
        // A's counter continues the numbering exactly.
        let mut a = MemoryRecorder::new();
        a.start_span(SimTime::ZERO, "one");
        a.start_span(SimTime::ZERO, "two");
        let mut b = MemoryRecorder::with_next_span_id(a.next_span_id());
        assert_eq!(b.start_span(SimTime::ZERO, "three"), SpanId(2));

        let mut w = JsonlWriter::with_next_span_id(Vec::new(), 2);
        assert_eq!(w.next_span_id(), 2);
        assert_eq!(w.start_span(SimTime::ZERO, "three"), SpanId(2));
        // The rendered line is identical to the uninterrupted recorder's.
        let mut full = MemoryRecorder::new();
        full.start_span(SimTime::ZERO, "one");
        full.start_span(SimTime::ZERO, "two");
        full.start_span(SimTime::ZERO, "three");
        let joined = a.to_jsonl() + &b.to_jsonl();
        assert_eq!(joined, full.to_jsonl());
    }

    #[test]
    fn span_ids_are_unique_per_recorder() {
        let mut r = MemoryRecorder::new();
        let a = r.start_span(SimTime::ZERO, "a");
        let b = r.start_span(SimTime::ZERO, "b");
        assert_ne!(a, b);
    }
}
