//! Mergeable percentile sketches.
//!
//! A [`Sketch`] is a fixed-bucket [`Histogram`] plus quantile
//! estimation, sized up front and never growing: folding a million
//! observations costs the same memory as folding ten. Two sketches with
//! the same [`SketchSpec`] merge exactly (bucket counts add), which is
//! what lets the fleet reducer fan out over files and combine partial
//! rollups without changing a single output bit.
//!
//! ## Error bounds
//!
//! Quantile estimates interpolate inside the bucket containing the
//! requested order statistic, so for an observation inside `[lo, hi)`:
//!
//! * **linear** spacing: absolute error ≤ one bucket width,
//!   `(hi − lo) / buckets`;
//! * **log** spacing: relative error ≤ one bucket ratio,
//!   `(hi / lo)^(1/buckets)`.
//!
//! Observations outside `[lo, hi)` land in the underflow/overflow
//! buckets; estimates there are clamped to the exact observed min/max,
//! so the bound degrades gracefully instead of silently lying. The
//! property tests in `crates/obs/tests` check these bounds against
//! exact order statistics on random data.

use crate::metrics::{write_json_f64, Histogram, MergeError};
use movr_math::convert::u64_to_f64;
use std::fmt::Write as _;

/// Bucket spacing of a [`Sketch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Spacing {
    /// Equal-width buckets — for values already in a log domain (dB).
    Linear,
    /// Geometrically spaced buckets — for raw magnitudes spanning
    /// decades (nanoseconds).
    Log,
}

impl Spacing {
    fn name(self) -> &'static str {
        match self {
            Spacing::Linear => "linear",
            Spacing::Log => "log",
        }
    }
}

/// The immutable layout of a [`Sketch`]: range, bucket count, spacing.
/// Two sketches merge iff their specs are equal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchSpec {
    /// Lowest interior edge.
    pub lo: f64,
    /// Highest interior edge (observations ≥ `hi` overflow).
    pub hi: f64,
    /// Number of interior buckets.
    pub buckets: usize,
    /// Bucket spacing.
    pub spacing: Spacing,
}

impl SketchSpec {
    /// Equal-width buckets over `[lo, hi)`.
    pub fn linear(lo: f64, hi: f64, buckets: usize) -> Self {
        SketchSpec {
            lo,
            hi,
            buckets,
            spacing: Spacing::Linear,
        }
    }

    /// Geometrically spaced buckets over `[lo, hi)`, `lo > 0`.
    pub fn log(lo: f64, hi: f64, buckets: usize) -> Self {
        SketchSpec {
            lo,
            hi,
            buckets,
            spacing: Spacing::Log,
        }
    }
}

/// A bounded-memory quantile sketch (see module docs).
#[derive(Debug, Clone)]
pub struct Sketch {
    spec: SketchSpec,
    hist: Histogram,
}

impl Sketch {
    /// An empty sketch with the given layout.
    pub fn new(spec: SketchSpec) -> Self {
        let hist = match spec.spacing {
            Spacing::Linear => Histogram::linear(spec.lo, spec.hi, spec.buckets),
            Spacing::Log => Histogram::log_spaced(spec.lo, spec.hi, spec.buckets),
        };
        Sketch { spec, hist }
    }

    /// The sketch's layout.
    pub fn spec(&self) -> &SketchSpec {
        &self.spec
    }

    /// The underlying histogram (counts, edges, exact summary).
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Records one observation (NaN ignored, ±∞ to the edge buckets).
    pub fn observe(&mut self, v: f64) {
        self.hist.observe(v);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Merges `other` into `self`; errors (leaving `self` untouched)
    /// when the layouts differ.
    pub fn try_merge(&mut self, other: &Sketch) -> Result<(), MergeError> {
        if self.spec != other.spec {
            return Err(MergeError::new(self.hist.edges(), other.hist.edges()));
        }
        self.hist.try_merge(&other.hist)
    }

    /// The `[lo, hi]` value range bucket `idx` estimates over. Underflow
    /// and overflow extend to the exact observed min/max when finite.
    fn bucket_bounds(&self, idx: usize) -> (f64, f64) {
        let edges = self.hist.edges();
        let s = self.hist.summary();
        let last = edges.len() - 1;
        if idx == 0 {
            let lo = if s.count() > 0 && s.min() < edges[0] {
                s.min()
            } else {
                edges[0]
            };
            (lo, edges[0])
        } else if idx > last {
            let hi = if s.count() > 0 && s.max() > edges[last] {
                s.max()
            } else {
                edges[last]
            };
            (edges[last], hi)
        } else {
            (edges[idx - 1], edges[idx])
        }
    }

    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`) of everything
    /// observed, `None` when empty. The estimate lies inside the bucket
    /// holding the ⌈q·(n−1)⌉-th order statistic — see the module docs
    /// for the resulting error bounds.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.hist.count();
        if total == 0 {
            return None;
        }
        let rank = q.clamp(0.0, 1.0) * u64_to_f64(total - 1);
        let mut cum: u64 = 0;
        for (i, &c) in self.hist.bucket_counts().iter().enumerate() {
            if c == 0 {
                continue;
            }
            if rank <= u64_to_f64(cum + c - 1) {
                let (lo, hi) = self.bucket_bounds(i);
                let frac = ((rank - u64_to_f64(cum) + 0.5) / u64_to_f64(c)).clamp(0.0, 1.0);
                return Some(lo + (hi - lo) * frac);
            }
            cum += c;
        }
        unreachable!("total > 0 guarantees some bucket holds the rank");
    }

    /// Serialises the sketch summary as one JSON object with
    /// alphabetically sorted keys (layout, exact summary, standard
    /// quantiles). Non-finite and absent values encode as `null`.
    pub fn write_json(&self, out: &mut String) {
        let s = self.hist.summary();
        let empty = s.count() == 0;
        let _ = write!(out, "{{\"buckets\":{},\"count\":{}", self.spec.buckets, self.count());
        out.push_str(",\"hi\":");
        write_json_f64(out, self.spec.hi);
        out.push_str(",\"lo\":");
        write_json_f64(out, self.spec.lo);
        out.push_str(",\"max\":");
        write_json_f64(out, if empty { f64::NAN } else { s.max() });
        out.push_str(",\"mean\":");
        write_json_f64(out, if empty { f64::NAN } else { s.mean() });
        out.push_str(",\"min\":");
        write_json_f64(out, if empty { f64::NAN } else { s.min() });
        let _ = write!(out, ",\"overflow\":{}", self.hist.overflow());
        for (name, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99), ("p999", 0.999)] {
            let _ = write!(out, ",\"{name}\":");
            write_json_f64(out, self.quantile(q).unwrap_or(f64::NAN));
        }
        let _ = write!(
            out,
            ",\"spacing\":\"{}\",\"underflow\":{}}}",
            self.spec.spacing.name(),
            self.hist.underflow()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_a_uniform_ramp_are_within_one_bucket() {
        let mut s = Sketch::new(SketchSpec::linear(0.0, 100.0, 50));
        for i in 0..1000 {
            s.observe(f64::from(i) * 0.1); // 0.0, 0.1, …, 99.9
        }
        let width = 2.0;
        for (q, exact) in [(0.0, 0.0), (0.5, 49.95), (0.9, 89.91), (1.0, 99.9)] {
            let est = s.quantile(q).expect("non-empty");
            assert!(
                (est - exact).abs() <= width + 1e-9,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn log_sketch_quantile_relative_error_bounded() {
        let spec = SketchSpec::log(1.0, 1e9, 90);
        let ratio = (1e9_f64).powf(1.0 / 90.0);
        let mut s = Sketch::new(spec);
        let mut values: Vec<f64> = (0..500).map(|i| 1.5_f64 * 1.04_f64.powi(i)).collect();
        for &v in &values {
            s.observe(v);
        }
        values.sort_by(f64::total_cmp);
        for q in [0.1, 0.5, 0.99] {
            let est = s.quantile(q).expect("non-empty");
            let rank = q * 499.0;
            let exact = values[rank.ceil() as usize];
            let rel = if est > exact { est / exact } else { exact / est };
            assert!(rel <= ratio + 1e-9, "q={q}: est {est} vs exact {exact} (rel {rel})");
        }
    }

    #[test]
    fn out_of_range_estimates_clamp_to_observed_extremes() {
        let mut s = Sketch::new(SketchSpec::linear(0.0, 10.0, 10));
        s.observe(-50.0);
        s.observe(5.0);
        s.observe(999.0);
        assert_eq!(s.quantile(0.0), Some(-50.0 + (0.0 - -50.0) * 0.5)); // mid of [-50, 0]
        let p100 = s.quantile(1.0).expect("non-empty");
        assert!((10.0..=999.0).contains(&p100), "{p100}");
    }

    #[test]
    fn empty_sketch_has_no_quantiles_and_serialises_nulls() {
        let s = Sketch::new(SketchSpec::log(1.0, 1e6, 12));
        assert_eq!(s.quantile(0.5), None);
        let mut json = String::new();
        s.write_json(&mut json);
        assert!(json.contains("\"count\":0"));
        assert!(json.contains("\"p50\":null"));
        assert!(json.contains("\"mean\":null"));
        assert!(json.contains("\"spacing\":\"log\""));
        crate::jsonv::Json::parse(&json).expect("sketch JSON must parse");
    }

    #[test]
    fn merge_preserves_counts_and_quantiles_exactly() {
        // Counts and quantiles are pure integer arithmetic, so merging
        // two halves must reproduce the single-pass sketch exactly.
        // (The exact running *mean* is float-order dependent — merged
        // streams agree only to rounding — which is why deterministic
        // reducers must always fold per-stream and merge in a fixed
        // order rather than mixing the two shapes.)
        let spec = SketchSpec::linear(-10.0, 50.0, 120);
        let mut whole = Sketch::new(spec);
        let mut a = Sketch::new(spec);
        let mut b = Sketch::new(spec);
        for i in 0..2000 {
            let v = f64::from(i).mul_add(0.037, -12.0);
            whole.observe(v);
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
        }
        a.try_merge(&b).expect("same spec");
        assert_eq!(a.histogram().bucket_counts(), whole.histogram().bucket_counts());
        assert_eq!(a.histogram().underflow(), whole.histogram().underflow());
        assert_eq!(a.histogram().overflow(), whole.histogram().overflow());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
        let (ma, mw) = (a.histogram().summary().mean(), whole.histogram().summary().mean());
        assert!((ma - mw).abs() < 1e-9, "{ma} vs {mw}");
    }

    #[test]
    fn mismatched_specs_refuse_to_merge() {
        let mut a = Sketch::new(SketchSpec::linear(0.0, 1.0, 4));
        let b = Sketch::new(SketchSpec::linear(0.0, 1.0, 5));
        let err = a.try_merge(&b).expect_err("layouts differ");
        assert_eq!(err.self_edges, 5);
        assert_eq!(err.other_edges, 6);
    }
}
