//! The perf ratchet: pins bench medians in a checked-in baseline and
//! fails when a run regresses past its tolerance.
//!
//! The baseline is a small TOML subset (`bench-baseline.toml`):
//!
//! ```toml
//! schema = 1
//!
//! [bench.alignment_sweep_101x101_cached]
//! median_ns = 23191563.0   # pinned median on the reference machine
//! max_ratio = 4.0          # fail when measured > pinned * max_ratio
//!
//! [speedup.sweep_speedup]
//! min = 5.0                # fail when reported speedup < min
//!
//! [speedup.fleet_speedup]
//! min = 1.5
//! skip_below_threads = 2   # skipped when the run had fewer threads
//! ```
//!
//! Bench results arrive as the JSON lines `cargo bench` writes (see
//! `out/BENCH_sweep.json`): measurement lines carry `median_ns`,
//! summary lines carry `speedup` (and optionally `threads`). Two rules
//! are built in on top of the baseline entries: a named line missing
//! from the run fails, and any `bit_identical` / `byte_identical`
//! field present in a checked line must be `true`.
//!
//! Tolerances are deliberately wide ratios, not absolute bounds — the
//! ratchet must pass on any machine while still catching a lost
//! order-of-magnitude (a cache that stopped caching, a fan-out that
//! went serial).

use crate::jsonv::Json;
use std::fmt::Write as _;

/// One pinned measurement bench: fail when the measured `median_ns`
/// exceeds `median_ns * max_ratio`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPin {
    /// Bench name (the JSON line's `name` field).
    pub name: String,
    /// Pinned median, ns, from the reference run.
    pub median_ns: f64,
    /// Allowed slowdown factor relative to the pin.
    pub max_ratio: f64,
}

/// One pinned speedup summary: fail when the reported `speedup` falls
/// below `min`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupPin {
    /// Summary line name.
    pub name: String,
    /// Minimum acceptable speedup.
    pub min: f64,
    /// Skip the check when the line's `threads` field is below this
    /// (single-core machines cannot demonstrate a parallel speedup).
    pub skip_below_threads: Option<u64>,
}

/// A parsed `bench-baseline.toml`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchBaseline {
    /// Measurement pins, in file order.
    pub benches: Vec<BenchPin>,
    /// Speedup pins, in file order.
    pub speedups: Vec<SpeedupPin>,
}

/// A baseline file or bench stream that could not be interpreted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatchetError {
    /// 1-based line in the offending file (0 when not line-specific).
    pub line: u64,
    /// What went wrong.
    pub what: String,
}

impl std::fmt::Display for RatchetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for RatchetError {}

fn bad(line: u64, what: impl Into<String>) -> RatchetError {
    RatchetError {
        line,
        what: what.into(),
    }
}

/// Parses the TOML subset the baseline uses: full-line comments,
/// `[section.name]` headers, and `key = value` pairs where the value is
/// a number. Anything else is an error — the file is checked in, so
/// strictness costs nothing and catches typos.
pub fn parse_baseline(text: &str) -> Result<BenchBaseline, RatchetError> {
    enum Section {
        None,
        Bench(usize),
        Speedup(usize),
    }
    let mut out = BenchBaseline::default();
    let mut section = Section::None;
    for (i, raw) in text.lines().enumerate() {
        let lineno = movr_math::convert::usize_to_u64(i) + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = match header.split_once('.') {
                Some(("bench", name)) if !name.is_empty() => {
                    out.benches.push(BenchPin {
                        name: name.to_string(),
                        median_ns: f64::NAN,
                        max_ratio: f64::NAN,
                    });
                    Section::Bench(out.benches.len() - 1)
                }
                Some(("speedup", name)) if !name.is_empty() => {
                    out.speedups.push(SpeedupPin {
                        name: name.to_string(),
                        min: f64::NAN,
                        skip_below_threads: None,
                    });
                    Section::Speedup(out.speedups.len() - 1)
                }
                _ => return Err(bad(lineno, format!("unknown section `[{header}]`"))),
            };
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(bad(lineno, format!("expected `key = value`, got `{line}`")));
        };
        let (key, value) = (key.trim(), value.trim());
        // Trailing comments are allowed after the value.
        let value = value.split('#').next().map_or(value, str::trim);
        let num = |v: &str| -> Result<f64, RatchetError> {
            v.parse::<f64>()
                .map_err(|_| bad(lineno, format!("`{key}` is not a number: `{v}`")))
        };
        match (&section, key) {
            (Section::None, "schema") => {
                if value != "1" {
                    return Err(bad(lineno, format!("unsupported schema `{value}`")));
                }
            }
            (Section::Bench(idx), "median_ns") => out.benches[*idx].median_ns = num(value)?,
            (Section::Bench(idx), "max_ratio") => out.benches[*idx].max_ratio = num(value)?,
            (Section::Speedup(idx), "min") => out.speedups[*idx].min = num(value)?,
            (Section::Speedup(idx), "skip_below_threads") => {
                let n = num(value)?;
                out.speedups[*idx].skip_below_threads = Json::Num(n)
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| bad(lineno, "skip_below_threads must be an integer"))?;
            }
            _ => return Err(bad(lineno, format!("unexpected key `{key}` here"))),
        }
    }
    for b in &out.benches {
        if !(b.median_ns.is_finite() && b.max_ratio.is_finite()) {
            return Err(bad(
                0,
                format!("[bench.{}] needs `median_ns` and `max_ratio`", b.name),
            ));
        }
    }
    for s in &out.speedups {
        if !s.min.is_finite() {
            return Err(bad(0, format!("[speedup.{}] needs `min`", s.name)));
        }
    }
    Ok(out)
}

/// One checked entry of a ratchet run.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    /// The baseline entry's name.
    pub name: String,
    /// `"ok"`, `"skip"`, or `"FAIL"`.
    pub status: &'static str,
    /// Human-readable measurement vs bound.
    pub detail: String,
}

impl CheckOutcome {
    /// True unless the entry regressed.
    pub fn passed(&self) -> bool {
        self.status != "FAIL"
    }
}

fn fmt_num(x: f64) -> String {
    let mut s = String::new();
    crate::metrics::write_json_f64(&mut s, x);
    s
}

/// Runs the ratchet: every baseline entry against the bench JSON lines
/// (non-JSON lines are ignored, so raw `cargo bench` output works).
/// Returns one outcome per baseline entry, in baseline order. Errors
/// only when the bench stream itself is unreadable; regressions are
/// reported as failed outcomes, not errors.
pub fn check(
    baseline: &BenchBaseline,
    bench_lines: &str,
) -> Result<Vec<CheckOutcome>, RatchetError> {
    let mut rows: Vec<Json> = Vec::new();
    for (i, raw) in bench_lines.lines().enumerate() {
        let line = raw.trim();
        if !line.starts_with('{') {
            continue;
        }
        let doc = Json::parse(line)
            .map_err(|e| bad(movr_math::convert::usize_to_u64(i) + 1, e.to_string()))?;
        rows.push(doc);
    }
    let find = |name: &str| {
        rows.iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some(name))
    };
    let identity_ok = |row: &Json| -> bool {
        ["bit_identical", "byte_identical"].iter().all(|k| {
            row.get(k).map_or(true, |v| v.as_bool() == Some(true))
        })
    };

    let mut out = Vec::new();
    for pin in &baseline.benches {
        let outcome = match find(&pin.name) {
            None => CheckOutcome {
                name: pin.name.clone(),
                status: "FAIL",
                detail: "bench line missing from the run".to_string(),
            },
            Some(row) => match row.get("median_ns").and_then(Json::as_f64) {
                None => CheckOutcome {
                    name: pin.name.clone(),
                    status: "FAIL",
                    detail: "bench line has no `median_ns`".to_string(),
                },
                Some(measured) => {
                    let bound = pin.median_ns * pin.max_ratio;
                    let mut detail = String::new();
                    let _ = write!(
                        detail,
                        "median {} ns vs bound {} ns (pin {} × {})",
                        fmt_num(measured),
                        fmt_num(bound),
                        fmt_num(pin.median_ns),
                        fmt_num(pin.max_ratio),
                    );
                    let ok = measured <= bound && identity_ok(row);
                    if !identity_ok(row) {
                        detail.push_str("; identity flag is false");
                    }
                    CheckOutcome {
                        name: pin.name.clone(),
                        status: if ok { "ok" } else { "FAIL" },
                        detail,
                    }
                }
            },
        };
        out.push(outcome);
    }
    for pin in &baseline.speedups {
        let outcome = match find(&pin.name) {
            None => CheckOutcome {
                name: pin.name.clone(),
                status: "FAIL",
                detail: "summary line missing from the run".to_string(),
            },
            Some(row) => {
                let threads = row.get("threads").and_then(Json::as_u64);
                let skip = match (pin.skip_below_threads, threads) {
                    (Some(need), Some(have)) => have < need,
                    _ => false,
                };
                if skip {
                    CheckOutcome {
                        name: pin.name.clone(),
                        status: "skip",
                        detail: format!(
                            "run had {} thread(s), pin needs {}",
                            threads.unwrap_or(0),
                            pin.skip_below_threads.unwrap_or(0),
                        ),
                    }
                } else {
                    match row.get("speedup").and_then(Json::as_f64) {
                        None => CheckOutcome {
                            name: pin.name.clone(),
                            status: "FAIL",
                            detail: "summary line has no `speedup`".to_string(),
                        },
                        Some(sp) => {
                            let ok = sp >= pin.min && identity_ok(row);
                            let mut detail =
                                format!("speedup {} vs min {}", fmt_num(sp), fmt_num(pin.min));
                            if !identity_ok(row) {
                                detail.push_str("; identity flag is false");
                            }
                            CheckOutcome {
                                name: pin.name.clone(),
                                status: if ok { "ok" } else { "FAIL" },
                                detail,
                            }
                        }
                    }
                }
            }
        };
        out.push(outcome);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = "\
# reference machine pins\n\
schema = 1\n\
\n\
[bench.sweep_cached]\n\
median_ns = 1000000.0  # 1 ms\n\
max_ratio = 4.0\n\
\n\
[speedup.sweep_speedup]\n\
min = 5.0\n\
\n\
[speedup.fleet_speedup]\n\
min = 1.5\n\
skip_below_threads = 2\n";

    fn bench_lines(cached_median: f64, sweep: f64, fleet: f64, threads: u64) -> String {
        format!(
            "warmup noise\n\
             {{\"name\":\"sweep_cached\",\"median_ns\":{cached_median},\"samples\":8}}\n\
             {{\"name\":\"sweep_speedup\",\"speedup\":{sweep},\"bit_identical\":true}}\n\
             {{\"name\":\"fleet_speedup\",\"speedup\":{fleet},\"threads\":{threads},\"byte_identical\":true}}\n"
        )
    }

    #[test]
    fn parses_the_baseline_shape() {
        let b = parse_baseline(BASELINE).expect("valid baseline");
        assert_eq!(b.benches.len(), 1);
        assert_eq!(b.benches[0].name, "sweep_cached");
        assert_eq!(b.benches[0].max_ratio, 4.0);
        assert_eq!(b.speedups.len(), 2);
        assert_eq!(b.speedups[1].skip_below_threads, Some(2));
    }

    #[test]
    fn baseline_typos_are_rejected_with_line_numbers() {
        assert!(parse_baseline("[wat.x]\n").is_err());
        assert!(parse_baseline("[bench.x]\nmedian_ns = fast\n").is_err());
        let e = parse_baseline("schema = 1\nnot a pair\n").expect_err("bad line");
        assert_eq!(e.line, 2);
        // Incomplete sections fail even with no bad line.
        assert!(parse_baseline("[bench.x]\nmedian_ns = 1.0\n").is_err());
        assert!(parse_baseline("[speedup.x]\n").is_err());
        assert!(parse_baseline("schema = 2\n").is_err());
    }

    #[test]
    fn within_tolerance_passes_and_regression_fails() {
        let b = parse_baseline(BASELINE).expect("valid");
        let ok = check(&b, &bench_lines(3_900_000.0, 13.0, 2.0, 4)).expect("readable");
        assert!(ok.iter().all(CheckOutcome::passed), "{ok:?}");

        let slow = check(&b, &bench_lines(4_100_000.0, 13.0, 2.0, 4)).expect("readable");
        assert_eq!(slow[0].status, "FAIL", "{slow:?}");

        let lost = check(&b, &bench_lines(3_900_000.0, 4.9, 2.0, 4)).expect("readable");
        assert_eq!(lost[1].status, "FAIL", "{lost:?}");
    }

    #[test]
    fn single_threaded_runs_skip_the_fleet_speedup_pin() {
        let b = parse_baseline(BASELINE).expect("valid");
        let out = check(&b, &bench_lines(3_900_000.0, 13.0, 0.98, 1)).expect("readable");
        let fleet = out.iter().find(|o| o.name == "fleet_speedup").expect("entry");
        assert_eq!(fleet.status, "skip");
        assert!(out.iter().all(CheckOutcome::passed));
    }

    #[test]
    fn missing_lines_and_false_identity_flags_fail() {
        let b = parse_baseline(BASELINE).expect("valid");
        let out = check(&b, "no json here\n").expect("readable");
        assert!(out.iter().all(|o| o.status == "FAIL"), "{out:?}");

        let flipped = bench_lines(3_900_000.0, 13.0, 2.0, 4)
            .replace("\"bit_identical\":true", "\"bit_identical\":false");
        let out = check(&b, &flipped).expect("readable");
        let sweep = out.iter().find(|o| o.name == "sweep_speedup").expect("entry");
        assert_eq!(sweep.status, "FAIL");
        assert!(sweep.detail.contains("identity"), "{}", sweep.detail);
    }

    #[test]
    fn unreadable_json_is_an_error_not_a_pass() {
        let b = parse_baseline(BASELINE).expect("valid");
        let e = check(&b, "{\"name\":broken\n").expect_err("bad json");
        assert_eq!(e.line, 1);
    }
}
