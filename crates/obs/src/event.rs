//! Structured events stamped with simulated time.
//!
//! An [`Event`] is one row of a session timeline: a [`SimTime`] stamp, a
//! static `kind`, and a small ordered list of typed fields. Events are
//! always stamped with *sim* time, never wall-clock, so a recorded stream
//! is a pure function of the seed — the determinism tests compare JSONL
//! output byte-for-byte across runs.
//!
//! The JSON encoding is hand-rolled (the crate is dependency-free by
//! design) and deterministic: fields serialise in insertion order, floats
//! use Rust's shortest-roundtrip `Display`, and non-finite floats become
//! `null` (JSON has no `inf`/`NaN`).

use movr_math::convert::usize_to_u64;
use movr_sim::SimTime;
use std::fmt::Write as _;

/// A typed field value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer (counts, indices, nanoseconds).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (dB, degrees, amperes). Non-finite encodes as `null`.
    F64(f64),
    /// Static string (mode names, message kinds).
    Str(&'static str),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(usize_to_u64(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(v)
    }
}
impl From<SimTime> for Value {
    fn from(v: SimTime) -> Self {
        Value::U64(v.as_nanos())
    }
}

/// One timeline row: a sim-time stamp, a kind, and typed fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// When the event happened, in simulated time.
    pub t: SimTime,
    /// Event kind (`"frame"`, `"beam_probe"`, `"gain_step"`, …).
    pub kind: &'static str,
    /// Ordered fields; insertion order is serialisation order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// A new event at `t` with no fields yet.
    pub fn new(t: SimTime, kind: &'static str) -> Self {
        Event {
            t,
            kind,
            fields: Vec::new(),
        }
    }

    /// Appends one field (builder style).
    pub fn with(mut self, name: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((name, value.into()));
        self
    }

    /// Looks up a field by name (first match).
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(n, _)| *n == name).map(|(_, v)| v)
    }

    /// Serialises the event as one JSON object, no trailing newline:
    /// `{"t_ns":<nanos>,"kind":"<kind>",<fields...>}`.
    pub fn json_line(&self) -> String {
        let mut out = String::with_capacity(48 + 24 * self.fields.len());
        let _ = write!(out, "{{\"t_ns\":{},\"kind\":", self.t.as_nanos());
        write_json_str(&mut out, self.kind);
        for (name, value) in &self.fields {
            out.push(',');
            write_json_str(&mut out, name);
            out.push(':');
            write_json_value(&mut out, value);
        }
        out.push('}');
        out
    }
}

fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_json_value(out: &mut String, v: &Value) {
    match v {
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        Value::F64(_) => out.push_str("null"),
        Value::Str(s) => write_json_str(out, s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_shape() {
        let e = Event::new(SimTime::from_millis(11), "frame")
            .with("delivered", true)
            .with("snr_db", 21.5)
            .with("mcs", 14usize)
            .with("mode", "direct");
        assert_eq!(
            e.json_line(),
            "{\"t_ns\":11000000,\"kind\":\"frame\",\"delivered\":true,\
             \"snr_db\":21.5,\"mcs\":14,\"mode\":\"direct\"}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = Event::new(SimTime::ZERO, "x")
            .with("a", f64::INFINITY)
            .with("b", f64::NAN);
        assert_eq!(e.json_line(), "{\"t_ns\":0,\"kind\":\"x\",\"a\":null,\"b\":null}");
    }

    #[test]
    fn strings_are_escaped() {
        let e = Event::new(SimTime::ZERO, "has \"quote\"");
        assert!(e.json_line().contains("\\\"quote\\\""));
    }

    #[test]
    fn field_lookup() {
        let e = Event::new(SimTime::ZERO, "x").with("k", 7u64);
        assert_eq!(e.field("k"), Some(&Value::U64(7)));
        assert_eq!(e.field("missing"), None);
    }

    #[test]
    fn simtime_field_encodes_nanos() {
        let e = Event::new(SimTime::ZERO, "x").with("at", SimTime::from_micros(3));
        assert_eq!(e.field("at"), Some(&Value::U64(3_000)));
    }
}
