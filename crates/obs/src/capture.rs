//! [`Capture`] — the recording context instrumented hot paths take.
//!
//! Every `_recorded` function needs the same two things: the sim-time
//! instant its work begins (so emitted events land on the shared
//! timeline) and the [`Recorder`] receiving them. Bundling the pair into
//! one argument keeps instrumented signatures short and makes the
//! convention explicit: one capture in, events stamped from
//! `cap.start` onward come out.

use crate::recorder::{NullRecorder, Recorder};
use movr_sim::SimTime;

/// Where on the sim-time axis an instrumented call starts, plus the
/// recorder receiving its events and spans.
///
/// Borrows the recorder mutably, so a `Capture` is naturally affine —
/// pass it by value to the one call it describes. Multi-stage callers
/// (a coarse sweep feeding a fine sweep) use [`Capture::stage`] to
/// lend the same recorder out again at a later start time.
pub struct Capture<'a> {
    /// Sim-time instant the instrumented work begins.
    pub start: SimTime,
    /// The sink receiving events and spans.
    pub rec: &'a mut dyn Recorder,
}

impl<'a> Capture<'a> {
    /// A capture starting at `start`, recording into `rec`.
    pub fn new(start: SimTime, rec: &'a mut dyn Recorder) -> Self {
        Capture { start, rec }
    }

    /// A capture at [`SimTime::ZERO`] recording into `rec`.
    pub fn from_zero(rec: &'a mut dyn Recorder) -> Self {
        Capture::new(SimTime::ZERO, rec)
    }

    /// Reborrows this capture for one stage of a larger operation,
    /// starting at `start`. The returned capture holds the same
    /// recorder; `self` is usable again once it is dropped.
    pub fn stage(&mut self, start: SimTime) -> Capture<'_> {
        Capture {
            start,
            rec: &mut *self.rec,
        }
    }
}

/// The silent capture: starts at [`SimTime::ZERO`] and drops every
/// event. What plain (un-instrumented) wrappers delegate with.
pub fn null_capture() -> Capture<'static> {
    // A &'static mut to a zero-sized recorder: NullRecorder is stateless,
    // so leaking one box per call would be correct but wasteful; instead
    // hand out disjoint leases of a shared zero-sized value via Box::leak.
    Capture::new(SimTime::ZERO, Box::leak(Box::new(NullRecorder)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, MemoryRecorder};

    #[test]
    fn stage_shares_the_recorder() {
        let mut rec = MemoryRecorder::new();
        let mut cap = Capture::new(SimTime::from_millis(5), &mut rec);
        {
            let s1 = cap.stage(SimTime::from_millis(5));
            s1.rec.record(Event::new(s1.start, "first"));
        }
        {
            let s2 = cap.stage(SimTime::from_millis(9));
            s2.rec.record(Event::new(s2.start, "second"));
        }
        assert_eq!(rec.events().len(), 2);
        assert_eq!(rec.events()[1].t, SimTime::from_millis(9));
    }

    #[test]
    fn null_capture_is_disabled_and_at_zero() {
        let cap = null_capture();
        assert_eq!(cap.start, SimTime::ZERO);
        assert!(!cap.rec.enabled());
    }
}
