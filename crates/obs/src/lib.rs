//! # movr-obs — sim-time-aware observability
//!
//! Structured tracing and metrics for the MoVR simulator. Every question
//! the paper's evaluation asks — *when* did the hand block the line of
//! sight, *how long* did the §4.1 backscatter sweep take to converge, how
//! close did the §4.2 gain controller ride the saturation knee, *why* did
//! a frame miss its motion-to-photon budget — needs per-event visibility
//! into the 90 Hz loop, not just an aggregate outcome. This crate
//! provides it with three pieces:
//!
//! * **Events** ([`Event`], [`Value`]) — structured timeline rows stamped
//!   with [`movr_sim::SimTime`], never wall-clock, so recorded streams
//!   are bit-deterministic per seed.
//! * **Recorders** ([`Recorder`], [`NullRecorder`], [`MemoryRecorder`],
//!   [`JsonlWriter`]) — pluggable sinks. The instrumented hot paths hold
//!   a `&mut dyn Recorder` and guard event construction with
//!   [`Recorder::enabled`], so observability is nearly free when off.
//!   Sim-time *spans* ([`Recorder::start_span`] / [`Recorder::end_span`])
//!   make durations (alignment sweeps, gain ramps, realignment stalls)
//!   first-class.
//! * **Metrics** ([`MetricsRegistry`], [`Histogram`], [`MetricsSnapshot`])
//!   — counters, gauges, and fixed-bucket histograms (linear spacing for
//!   dB, log spacing for nanoseconds), snapshotable into results.
//!
//! The crate depends only on `movr-sim` (for `SimTime`) and `movr-math`
//! (for `Summary`) — no external dependencies, no I/O beyond the
//! caller-supplied `io::Write` sink.
//!
//! ## Example
//!
//! ```
//! use movr_obs::{Event, Histogram, MemoryRecorder, MetricsRegistry, Recorder};
//! use movr_sim::SimTime;
//!
//! let mut rec = MemoryRecorder::new();
//! let sweep = rec.start_span(SimTime::ZERO, "alignment_sweep");
//! if rec.enabled() {
//!     rec.record(
//!         Event::new(SimTime::from_micros(50), "beam_probe")
//!             .with("theta1_deg", -102.0)
//!             .with("power_dbm", -48.5),
//!     );
//! }
//! rec.end_span(SimTime::from_millis(180), "alignment_sweep", sweep);
//! assert_eq!(rec.spans()[0].0, "alignment_sweep");
//!
//! let mut metrics = MetricsRegistry::new();
//! metrics.inc("frames_total");
//! metrics.histogram("frame_snr_db", || Histogram::linear(-10.0, 50.0, 60)).observe(21.5);
//! assert_eq!(metrics.snapshot().counter("frames_total"), Some(1));
//! ```

mod capture;
mod event;
mod jsonv;
mod metrics;
mod ratchet;
mod recorder;
mod reduce;
mod rollup;
mod sketch;

pub use capture::{null_capture, Capture};
pub use event::{Event, Value};
pub use jsonv::{Json, JsonError};
pub use metrics::{Histogram, InvalidHistogram, MergeError, MetricsRegistry, MetricsSnapshot};
pub use recorder::{
    JsonlSinkError, JsonlWriter, MemoryRecorder, NullRecorder, Recorder, SessionTagged, SpanId,
};
pub use ratchet::{check, parse_baseline, BenchBaseline, BenchPin, CheckOutcome, RatchetError, SpeedupPin};
pub use reduce::{reduce_lines, reduce_one_stream, reduce_streams, ReduceError};
pub use rollup::{diff_json, DiffEntry, Rollup, SessionRollup, FLEET_SKETCHES};
pub use sketch::{Sketch, SketchSpec, Spacing};
