//! A minimal JSON reader for the analytics side of the crate.
//!
//! The *writing* half of movr-obs (events, metrics, rollups) hand-rolls
//! its serialisation; this module is the matching *reading* half, used
//! by the fleet reducer (JSONL event lines), the rollup differ (two
//! rollup documents), and the perf ratchet (bench JSON lines). It is a
//! strict recursive-descent parser over the JSON subset those producers
//! emit — objects, arrays, strings with escapes, numbers, `true` /
//! `false` / `null` — kept in-tree so the crate stays dependency-free.
//!
//! Numbers parse to `f64`. Every integer the simulator serialises
//! (counts, nanosecond timestamps) is far below 2^53, so round-tripping
//! through `f64` is exact; [`Json::as_u64`] re-checks exactness instead
//! of trusting that argument.

use movr_math::convert::f64_to_u64;
use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Object fields keep their document order (the
/// differ reports paths in a canonical sorted order regardless).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Object field by name (first match), if this is an object.
    pub fn get(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as an exact unsigned integer: `Some` only when the
    /// value is a non-negative number with no fractional part that fits
    /// `f64` exactly (≤ 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        if !(x.is_finite() && x >= 0.0 && x.fract() == 0.0 && x <= 9_007_199_254_740_992.0) {
            return None;
        }
        Some(f64_to_u64(x))
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object fields in document order, if this is an object.
    pub fn fields(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(f) => Some(f),
            _ => None,
        }
    }

    /// Object fields as a sorted map (duplicate keys: last wins), if
    /// this is an object.
    pub fn to_map(&self) -> Option<BTreeMap<&str, &Json>> {
        match self {
            Json::Obj(f) => Some(f.iter().map(|(k, v)| (k.as_str(), v)).collect()),
            _ => None,
        }
    }
}

/// Parse failure: byte offset plus what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the document.
    pub at: usize,
    /// What the parser expected or found.
    pub what: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

/// Documents nest at most a handful of levels (rollups: 3); a hard cap
/// keeps a malicious or corrupt input from overflowing the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            what: what.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", char::from(b))))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nests too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of document")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Timelines only escape control characters;
                            // surrogate pairs are out of scope, and a
                            // lone surrogate is an error, not data.
                            match char::from_u32(cp) {
                                Some(c) => out.push(c),
                                None => {
                                    return Err(
                                        self.err("\\u escape is not a scalar value")
                                    )
                                }
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("raw control character in string"))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so
                    // boundaries are trustworthy).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos] & 0xC0) == 0x80
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input slice came from a &str"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_an_event_line() {
        let v = Json::parse(
            "{\"t_ns\":11000000,\"kind\":\"frame\",\"delivered\":true,\
             \"snr_db\":21.5,\"mcs\":14,\"mode\":\"direct\"}",
        )
        .expect("valid line");
        assert_eq!(v.get("t_ns").and_then(Json::as_u64), Some(11_000_000));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("frame"));
        assert_eq!(v.get("delivered").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("snr_db").and_then(Json::as_f64), Some(21.5));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_nesting_arrays_null_and_escapes() {
        let v = Json::parse(
            "{\"a\":[1,-2.5,1e3,null],\"s\":\"q\\\"\\\\\\u0041\\n\",\"o\":{\"k\":false}}",
        )
        .expect("valid document");
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-2.5),
                Json::Num(1000.0),
                Json::Null
            ]))
        );
        assert_eq!(v.get("s").and_then(Json::as_str), Some("q\"\\A\n"));
        assert_eq!(v.get("o").and_then(|o| o.get("k")).and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn round_trips_event_json() {
        use crate::Event;
        use movr_sim::SimTime;
        let e = Event::new(SimTime::from_micros(7), "has \"quote\"")
            .with("nan", f64::NAN)
            .with("neg", -3i64);
        let v = Json::parse(&e.json_line()).expect("writer output must parse");
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("has \"quote\""));
        assert_eq!(v.get("nan"), Some(&Json::Null));
        assert_eq!(v.get("neg").and_then(Json::as_f64), Some(-3.0));
    }

    #[test]
    fn rejects_garbage_with_positions() {
        for (text, at) in [
            ("", 0),
            ("{", 1),
            ("{\"a\":}", 5),
            ("[1,]", 3),
            ("truex", 4),
            ("\"unterminated", 13),
            ("{\"a\":1} extra", 8),
        ] {
            let e = Json::parse(text).expect_err(text);
            assert_eq!(e.at, at, "{text}: {e}");
        }
    }

    #[test]
    fn as_u64_is_exact_or_none() {
        assert_eq!(Json::Num(0.0).as_u64(), Some(0));
        assert_eq!(Json::Num(9e15).as_u64(), Some(9_000_000_000_000_000));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(1e16).as_u64(), None);
        assert_eq!(Json::Str("7".into()).as_u64(), None);
    }

    #[test]
    fn depth_limit_errors_instead_of_overflowing() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(Json::parse(&ok).is_ok());
    }
}
