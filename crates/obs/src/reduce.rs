//! The streaming fleet reducer: JSONL event streams in, [`Rollup`] out.
//!
//! One pass, bounded memory. Each line is parsed, dispatched on its
//! `kind`, folded into the rollup, and dropped — the reducer never
//! holds more than the current line plus the open-span table (spans
//! that have started but not yet ended, keyed by `(session, span_id)`).
//! Event streams from [`crate::SessionTagged`] recorders carry a
//! `session` field; untagged streams fold into session 0.
//!
//! Determinism: the rollup is pure addition over per-event
//! contributions, so any partition of the input into whole streams —
//! one file or many, reduced sequentially or in parallel and then
//! [`Rollup::merge`]d in input order — produces byte-identical
//! [`Rollup::to_json`] output. (Splitting *within* a stream is the one
//! unsupported cut: it can separate a `span_start` from its
//! `span_end`, and unclosed spans are dropped, matching
//! [`crate::MemoryRecorder::spans`].)

use crate::jsonv::Json;
use crate::rollup::Rollup;
use std::collections::BTreeMap;
use std::io::BufRead;

/// Indices into the rollup's fleet sketch array, in
/// [`crate::FLEET_SKETCHES`] order.
const SK_AIRTIME: usize = 0;
const SK_REALIGN: usize = 1;
const SK_SNR: usize = 2;
const SK_STALL: usize = 3;

/// A reduce failure: which stream, which 1-based line, and what was
/// wrong with it. I/O errors and malformed lines both land here —
/// a fleet rollup computed from a half-read stream would be silently
/// wrong, so the reducer refuses instead.
#[derive(Debug)]
pub struct ReduceError {
    /// Label of the offending stream (file name, or `"<input>"`).
    pub stream: String,
    /// 1-based line number within that stream (0 = before any line).
    pub line: u64,
    /// What went wrong.
    pub what: String,
}

impl std::fmt::Display for ReduceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.stream, self.line, self.what)
    }
}

impl std::error::Error for ReduceError {}

/// The open-span table: `(session, span_id)` → `(span name, start ns)`.
type OpenSpans = BTreeMap<(u64, u64), (String, u64)>;

fn fold_line(
    rollup: &mut Rollup,
    open: &mut OpenSpans,
    line: &str,
) -> Result<(), String> {
    let doc = Json::parse(line).map_err(|e| e.to_string())?;
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("event line has no string `kind` field")?;
    let t_ns = doc
        .get("t_ns")
        .and_then(Json::as_u64)
        .ok_or("event line has no integer `t_ns` field")?;
    let session = match doc.get("session") {
        None => 0,
        Some(v) => v.as_u64().ok_or("`session` field is not an integer")?,
    };

    rollup.session_mut(session).events += 1;
    match kind {
        "frame" => {
            let delivered = doc
                .get("delivered")
                .and_then(Json::as_bool)
                .ok_or("frame event has no bool `delivered` field")?;
            let s = rollup.session_mut(session);
            s.frames_total += 1;
            if delivered {
                s.frames_delivered += 1;
            }
            if let Some(snr) = doc.get("snr_db").and_then(Json::as_f64) {
                rollup.observe(SK_SNR, snr);
            }
            if let Some(air) = doc.get("airtime_ns").and_then(Json::as_f64) {
                rollup.observe(SK_AIRTIME, air);
            }
        }
        "mode_switch" => {
            let to = doc
                .get("to")
                .and_then(Json::as_str)
                .ok_or("mode_switch event has no string `to` field")?;
            let from = match doc.get("from") {
                None => "start",
                Some(v) => v
                    .as_str()
                    .ok_or("mode_switch `from` field is not a string")?,
            };
            let s = rollup.session_mut(session);
            if from != "start" {
                s.mode_switches += 1;
            }
            *s.transitions
                .entry((from.to_string(), to.to_string()))
                .or_insert(0) += 1;
        }
        "realign" => {
            let cost = doc
                .get("cost_ns")
                .and_then(Json::as_u64)
                .ok_or("realign event has no integer `cost_ns` field")?;
            let s = rollup.session_mut(session);
            s.realigns += 1;
            s.realign_time_ns += cost;
            rollup.observe(SK_REALIGN, movr_math::convert::u64_to_f64(cost));
        }
        "stall_recovered" => {
            let frames = doc
                .get("stall_frames")
                .and_then(Json::as_u64)
                .ok_or("stall_recovered event has no integer `stall_frames` field")?;
            let s = rollup.session_mut(session);
            s.glitches += 1;
            s.glitch_frames += frames;
        }
        "span_start" => {
            let (name, id) = span_fields(&doc)?;
            open.insert((session, id), (name.to_string(), t_ns));
        }
        "span_end" => {
            let (name, id) = span_fields(&doc)?;
            // An end without a matching start (stream cut mid-span) is
            // dropped, like an unclosed start.
            if let Some((start_name, start_ns)) = open.remove(&(session, id)) {
                if start_name != name {
                    return Err(format!(
                        "span {id} started as `{start_name}` but ended as `{name}`"
                    ));
                }
                if name == "realign_stall" {
                    let dur = t_ns.saturating_sub(start_ns);
                    let s = rollup.session_mut(session);
                    s.stall_spans += 1;
                    s.stall_time_ns += dur;
                    rollup.observe(SK_STALL, movr_math::convert::u64_to_f64(dur));
                }
            }
        }
        // Unknown kinds are counted in `events` and otherwise skipped,
        // so older reducers tolerate newer instrumented binaries.
        _ => {}
    }
    Ok(())
}

fn span_fields(doc: &Json) -> Result<(&str, u64), String> {
    let name = doc
        .get("span")
        .and_then(Json::as_str)
        .ok_or("span event has no string `span` field")?;
    let id = doc
        .get("span_id")
        .and_then(Json::as_u64)
        .ok_or("span event has no integer `span_id` field")?;
    Ok((name, id))
}

/// Folds borrowed JSONL lines (blank lines skipped) into `rollup`.
/// Returns the number of event lines consumed. `stream` labels error
/// messages.
pub fn reduce_lines<'a>(
    stream: &str,
    lines: impl IntoIterator<Item = &'a str>,
    rollup: &mut Rollup,
) -> Result<u64, ReduceError> {
    let mut open = OpenSpans::new();
    let mut n = 0u64;
    for (i, line) in lines.into_iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        fold_line(rollup, &mut open, line).map_err(|what| ReduceError {
            stream: stream.to_string(),
            line: movr_math::convert::usize_to_u64(i) + 1,
            what,
        })?;
        n += 1;
    }
    Ok(n)
}

/// Folds one stream line by line into a fresh [`Rollup`] — memory
/// stays bounded by one line plus the open-span table no matter how
/// large the input is. Returns the rollup and the event lines consumed.
pub fn reduce_one_stream<R: BufRead>(
    label: &str,
    mut reader: R,
) -> Result<(Rollup, u64), ReduceError> {
    let mut rollup = Rollup::new();
    let mut open = OpenSpans::new();
    let mut buf = String::new();
    let mut lineno = 0u64;
    let mut total = 0u64;
    loop {
        buf.clear();
        let read = reader.read_line(&mut buf).map_err(|e| ReduceError {
            stream: label.to_string(),
            line: lineno + 1,
            what: format!("read failed: {e}"),
        })?;
        if read == 0 {
            break;
        }
        lineno += 1;
        let line = buf.trim_end_matches(['\n', '\r']);
        if line.trim().is_empty() {
            continue;
        }
        fold_line(&mut rollup, &mut open, line).map_err(|what| ReduceError {
            stream: label.to_string(),
            line: lineno,
            what,
        })?;
        total += 1;
    }
    Ok((rollup, total))
}

/// Folds every labelled stream into `rollup`: each stream is reduced
/// into its own fresh rollup ([`reduce_one_stream`]) and the results
/// are merged in input order. This per-stream-then-merge shape is the
/// *only* fold shape the reducer ever uses — the exact mean/variance
/// accumulators are float-order dependent, so mixing "fold it all into
/// one rollup" with "merge partials" would produce last-ulp
/// differences. Holding the shape fixed makes the output byte-identical
/// however the streams are distributed across threads. Returns total
/// event lines consumed.
pub fn reduce_streams<R: BufRead>(
    streams: impl IntoIterator<Item = (String, R)>,
    rollup: &mut Rollup,
) -> Result<u64, ReduceError> {
    let mut total = 0u64;
    for (label, reader) in streams {
        let (part, n) = reduce_one_stream(&label, reader)?;
        rollup.merge(&part).map_err(|e| ReduceError {
            stream: label.clone(),
            line: 0,
            what: format!("rollup merge failed: {e}"),
        })?;
        total += n;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonv::Json;

    const SAMPLE: &str = "\
{\"t_ns\":0,\"kind\":\"mode_switch\",\"to\":\"los\",\"session\":1}\n\
{\"t_ns\":11000000,\"kind\":\"frame\",\"delivered\":true,\"snr_db\":21.5,\"airtime_ns\":450000,\"session\":1}\n\
{\"t_ns\":22000000,\"kind\":\"realign\",\"mode\":\"reflector0\",\"cost_ns\":2000000,\"session\":1}\n\
{\"t_ns\":22000000,\"kind\":\"span_start\",\"span\":\"realign_stall\",\"span_id\":0,\"session\":1}\n\
{\"t_ns\":24000000,\"kind\":\"span_end\",\"span\":\"realign_stall\",\"span_id\":0,\"session\":1}\n\
{\"t_ns\":22000000,\"kind\":\"mode_switch\",\"from\":\"los\",\"to\":\"reflector0\",\"session\":1}\n\
{\"t_ns\":33000000,\"kind\":\"frame\",\"delivered\":false,\"snr_db\":3.0,\"session\":1}\n\
{\"t_ns\":44000000,\"kind\":\"stall_recovered\",\"stall_frames\":1,\"session\":1}\n\
{\"t_ns\":44000000,\"kind\":\"frame\",\"delivered\":true,\"snr_db\":19.0,\"airtime_ns\":500000,\"session\":1}\n";

    #[test]
    fn folds_every_kind_into_the_right_counters() {
        let mut r = Rollup::new();
        let n = reduce_lines("<test>", SAMPLE.lines(), &mut r).expect("valid stream");
        assert_eq!(n, 9);
        let s = &r.sessions()[&1];
        assert_eq!(s.events, 9);
        assert_eq!(s.frames_total, 3);
        assert_eq!(s.frames_delivered, 2);
        assert_eq!(s.mode_switches, 1);
        assert_eq!(s.realigns, 1);
        assert_eq!(s.realign_time_ns, 2_000_000);
        assert_eq!(s.stall_spans, 1);
        assert_eq!(s.stall_time_ns, 2_000_000);
        assert_eq!(s.glitches, 1);
        assert_eq!(s.glitch_frames, 1);
        assert_eq!(
            s.transitions[&("start".to_string(), "los".to_string())],
            1
        );
        assert_eq!(
            s.transitions[&("los".to_string(), "reflector0".to_string())],
            1
        );
        assert_eq!(r.sketch("snr_db").expect("snr").count(), 3);
        assert_eq!(r.sketch("airtime_ns").expect("airtime").count(), 2);
        assert_eq!(r.sketch("stall_ns").expect("stall").count(), 1);
        assert_eq!(r.sketch("realign_cost_ns").expect("realign").count(), 1);
    }

    #[test]
    fn untagged_lines_fold_into_session_zero() {
        let mut r = Rollup::new();
        reduce_lines(
            "<test>",
            ["{\"t_ns\":0,\"kind\":\"frame\",\"delivered\":true,\"snr_db\":10.0}"],
            &mut r,
        )
        .expect("valid");
        assert_eq!(r.sessions()[&0].frames_total, 1);
    }

    #[test]
    fn stream_fold_shape_is_byte_stable_however_streams_are_grouped() {
        // reduce_streams must equal "reduce each stream alone, merge in
        // order" byte for byte — that equivalence is what makes the
        // parallel fan-out in the movr-obs binary thread-count
        // invariant.
        let a = SAMPLE.to_string();
        let b = SAMPLE.replace("\"session\":1", "\"session\":2");
        let mut whole = Rollup::new();
        reduce_streams(
            [
                ("a".to_string(), a.as_bytes()),
                ("b".to_string(), b.as_bytes()),
            ],
            &mut whole,
        )
        .expect("streams");

        let (left, _) = reduce_one_stream("a", a.as_bytes()).expect("a");
        let (right, _) = reduce_one_stream("b", b.as_bytes()).expect("b");
        let mut acc = Rollup::new();
        acc.merge(&left).expect("schema");
        acc.merge(&right).expect("schema");

        assert_eq!(acc.to_json(), whole.to_json());
        assert_eq!(whole.sessions().len(), 2);
    }

    #[test]
    fn reduce_streams_reads_bufread_sources() {
        let mut r = Rollup::new();
        let n = reduce_streams(
            [
                ("a.jsonl".to_string(), SAMPLE.as_bytes()),
                ("b.jsonl".to_string(), "\n".as_bytes()),
            ],
            &mut r,
        )
        .expect("valid streams");
        assert_eq!(n, 9);
        assert_eq!(r.sessions().len(), 1);
    }

    #[test]
    fn malformed_lines_error_with_stream_and_line() {
        let mut r = Rollup::new();
        let err = reduce_lines(
            "fleet-3.jsonl",
            ["{\"t_ns\":0,\"kind\":\"frame\",\"delivered\":true}", "{nope"],
            &mut r,
        )
        .expect_err("bad line");
        assert_eq!(err.stream, "fleet-3.jsonl");
        assert_eq!(err.line, 2);
        assert!(err.to_string().starts_with("fleet-3.jsonl:2: "), "{err}");

        let err = reduce_lines(
            "<x>",
            ["{\"t_ns\":0,\"kind\":\"mode_switch\"}"],
            &mut r,
        )
        .expect_err("missing `to`");
        assert!(err.what.contains("`to`"), "{err}");
    }

    #[test]
    fn span_cut_across_stream_boundary_is_dropped_not_crashed() {
        let start = "{\"t_ns\":5,\"kind\":\"span_start\",\"span\":\"realign_stall\",\"span_id\":9}";
        let end = "{\"t_ns\":8,\"kind\":\"span_end\",\"span\":\"realign_stall\",\"span_id\":9}";
        let mut r = Rollup::new();
        reduce_lines("<a>", [start], &mut r).expect("start only");
        reduce_lines("<b>", [end], &mut r).expect("end only");
        assert_eq!(r.sessions()[&0].stall_spans, 0);
        assert_eq!(r.sessions()[&0].events, 2);
    }

    #[test]
    fn rollup_json_from_reduce_parses_and_counts_match() {
        let mut r = Rollup::new();
        reduce_lines("<t>", SAMPLE.lines(), &mut r).expect("valid");
        let doc = Json::parse(&r.to_json()).expect("rollup parses");
        let fleet = doc.get("fleet").expect("fleet");
        assert_eq!(fleet.get("events").and_then(Json::as_u64), Some(9));
        assert_eq!(fleet.get("sessions").and_then(Json::as_u64), Some(1));
    }
}
