//! Metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Events answer "what happened when"; metrics answer "how much, how
//! often, how spread". The registry is deliberately simple — string-keyed
//! maps with deterministic (sorted) iteration order — so a snapshot
//! serialises identically across same-seed runs and can be diffed by
//! future perf PRs.
//!
//! [`Histogram`] is fixed-bucket: the bucket edges are chosen up front
//! (linear spacing for quantities already in a log domain like dB,
//! geometric spacing for raw magnitudes like nanoseconds), plus explicit
//! underflow and overflow buckets so no observation is ever dropped. A
//! [`movr_math::Summary`] rides along for exact mean/min/max.

use movr_math::convert::{usize_to_f64, usize_to_i32};
use movr_math::Summary;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A fixed-bucket histogram with underflow/overflow buckets and an exact
/// running summary.
///
/// For `n` interior buckets there are `n + 1` edges `e₀ < e₁ < … < eₙ`
/// and `n + 2` counts: `counts[0]` holds `v < e₀` (underflow),
/// `counts[k]` holds `eₖ₋₁ ≤ v < eₖ`, and `counts[n + 1]` holds
/// `v ≥ eₙ` (overflow). NaN observations are ignored (they order
/// nowhere); ±∞ land in overflow/underflow.
#[derive(Debug, Clone)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    summary: Summary,
}

impl Histogram {
    fn from_edges(edges: Vec<f64>) -> Self {
        assert!(edges.len() >= 2, "need at least one interior bucket"); // lint: private constructor; both callers pass compile-time bucket layouts
        assert!( // lint: private constructor; both callers pass compile-time bucket layouts
            edges.windows(2).all(|w| w[0] < w[1]), // lint: windows(2) slices always hold two elements
            "bucket edges must be strictly increasing"
        );
        let counts = vec![0; edges.len() + 1];
        Histogram {
            edges,
            counts,
            total: 0,
            summary: Summary::new(),
        }
    }

    /// `n_buckets` equal-width buckets spanning `[lo, hi)` — the right
    /// spacing for values already in a log domain (dB).
    pub fn linear(lo: f64, hi: f64, n_buckets: usize) -> Self {
        assert!(n_buckets >= 1, "need at least one bucket"); // lint: constructor contract on a caller constant, not runtime input
        assert!(lo < hi, "lo must be below hi"); // lint: constructor contract on a caller constant, not runtime input
        let w = (hi - lo) / usize_to_f64(n_buckets);
        Histogram::from_edges((0..=n_buckets).map(|i| lo + w * usize_to_f64(i)).collect())
    }

    /// `n_buckets` geometrically spaced buckets spanning `[lo, hi)` with
    /// `lo > 0` — the right spacing for raw magnitudes covering decades
    /// (durations in nanoseconds).
    pub fn log_spaced(lo: f64, hi: f64, n_buckets: usize) -> Self {
        assert!(n_buckets >= 1, "need at least one bucket"); // lint: constructor contract on a caller constant, not runtime input
        assert!(lo > 0.0 && lo < hi, "log spacing needs 0 < lo < hi"); // lint: constructor contract on a caller constant, not runtime input
        let ratio = (hi / lo).powf(1.0 / usize_to_f64(n_buckets));
        Histogram::from_edges(
            (0..=n_buckets).map(|i| lo * ratio.powi(usize_to_i32(i))).collect(),
        )
    }

    /// Rebuilds a histogram from checkpointed parts, re-validating every
    /// layout invariant — the parts come from external bytes, so a bad
    /// layout must surface as an error, not a later panic or misbin.
    pub fn from_parts(
        edges: Vec<f64>,
        counts: Vec<u64>,
        total: u64,
        summary: Summary,
    ) -> Result<Self, InvalidHistogram> {
        if edges.len() < 2 {
            return Err(InvalidHistogram {
                what: "fewer than two bucket edges",
            });
        }
        if !edges.windows(2).all(|w| w[0] < w[1]) { // lint: windows(2) slices always hold two elements
            return Err(InvalidHistogram {
                what: "bucket edges not strictly increasing",
            });
        }
        if counts.len() != edges.len() + 1 {
            return Err(InvalidHistogram {
                what: "bucket count list does not match edge count",
            });
        }
        let sum: u64 = counts.iter().sum();
        if sum != total {
            return Err(InvalidHistogram {
                what: "total does not equal the sum of bucket counts",
            });
        }
        Ok(Histogram {
            edges,
            counts,
            total,
            summary,
        })
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        let idx = self.edges.partition_point(|&e| e <= v);
        self.counts[idx] += 1;
        self.total += 1;
        if v.is_finite() {
            self.summary.push(v);
        }
    }

    /// Total observations recorded (equals the sum of all bucket counts,
    /// underflow and overflow included).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The bucket edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// All bucket counts: `[underflow, interior…, overflow]`.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the lowest edge.
    pub fn underflow(&self) -> u64 {
        self.counts[0]
    }

    /// Observations at or above the highest edge.
    pub fn overflow(&self) -> u64 {
        *self.counts.last().expect("counts never empty")
    }

    /// Exact summary (mean/min/max/stddev) of the finite observations.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Merges `other` into `self`.
    ///
    /// # Panics
    /// Panics if the bucket layouts differ — merging histograms with
    /// different edges would silently misbin. Callers folding layouts
    /// they did not construct themselves (e.g. the fleet reducer merging
    /// rollups) should use [`Histogram::try_merge`] instead.
    pub fn merge(&mut self, other: &Histogram) {
        if let Err(e) = self.try_merge(other) {
            panic!("cannot merge histograms with different bucket edges: {e}");
        }
    }

    /// Fallible [`Histogram::merge`]: adds `other`'s counts and summary
    /// into `self`, or returns a structured [`MergeError`] when the
    /// bucket layouts differ. On error `self` is untouched.
    pub fn try_merge(&mut self, other: &Histogram) -> Result<(), MergeError> {
        if self.edges != other.edges {
            return Err(MergeError::new(&self.edges, &other.edges));
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        self.summary.merge(&other.summary);
        Ok(())
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"count\":");
        let _ = write!(out, "{}", self.total);
        out.push_str(",\"mean\":");
        write_json_f64(out, if self.summary.count() == 0 { f64::NAN } else { self.summary.mean() });
        out.push_str(",\"min\":");
        write_json_f64(out, self.summary.min());
        out.push_str(",\"max\":");
        write_json_f64(out, self.summary.max());
        out.push_str(",\"edges\":[");
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_f64(out, *e);
        }
        out.push_str("],\"counts\":[");
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{c}");
        }
        out.push_str("]}");
    }
}

/// Error from [`Histogram::from_parts`]: the checkpointed parts violate a
/// histogram layout invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidHistogram {
    /// Which invariant failed.
    pub what: &'static str,
}

impl std::fmt::Display for InvalidHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid histogram parts: {}", self.what)
    }
}

impl std::error::Error for InvalidHistogram {}

/// Error from [`Histogram::try_merge`]: the two histograms have
/// different bucket layouts, so their counts cannot be combined without
/// misbinning. Carries a compact description of both layouts for the
/// report that surfaces it.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeError {
    /// Interior-edge count of the merge target.
    pub self_edges: usize,
    /// Interior-edge count of the histogram being merged in.
    pub other_edges: usize,
    /// `[first, last]` edge of the merge target.
    pub self_span: [f64; 2],
    /// `[first, last]` edge of the histogram being merged in.
    pub other_span: [f64; 2],
}

impl MergeError {
    pub(crate) fn new(self_edges: &[f64], other_edges: &[f64]) -> Self {
        let span = |e: &[f64]| match (e.first(), e.last()) {
            (Some(&a), Some(&b)) => [a, b],
            _ => [f64::NAN, f64::NAN],
        };
        MergeError {
            self_edges: self_edges.len(),
            other_edges: other_edges.len(),
            self_span: span(self_edges),
            other_span: span(other_edges),
        }
    }
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bucket layouts differ: {} edges spanning [{}, {}] vs {} edges spanning [{}, {}]",
            self.self_edges,
            self.self_span[0],
            self.self_span[1],
            self.other_edges,
            self.other_span[0],
            self.other_span[1],
        )
    }
}

impl std::error::Error for MergeError {}

pub(crate) fn write_json_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

/// String-keyed counters, gauges, and histograms with deterministic
/// iteration order.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `n` to counter `name` (creating it at zero).
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Sets gauge `name` to `v` (last write wins).
    pub fn set_gauge(&mut self, name: &'static str, v: f64) {
        self.gauges.insert(name, v);
    }

    /// The histogram `name`, created with `mk` on first use.
    pub fn histogram(
        &mut self,
        name: &'static str,
        mk: impl FnOnce() -> Histogram,
    ) -> &mut Histogram {
        self.histograms.entry(name).or_insert_with(mk)
    }

    /// Sets counter `name` to an absolute value (checkpoint restore —
    /// normal accounting should use [`MetricsRegistry::inc`]/
    /// [`MetricsRegistry::add`]).
    pub fn set_counter(&mut self, name: &'static str, v: u64) {
        self.counters.insert(name, v);
    }

    /// Installs a fully-built histogram under `name`, replacing any
    /// existing one (checkpoint restore).
    pub fn insert_histogram(&mut self, name: &'static str, h: Histogram) {
        self.histograms.insert(name, h);
    }

    /// An immutable, cloneable snapshot of everything, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`], sorted by name —
/// attachable to results (e.g. `SessionOutcome::metrics`) and
/// serialisable deterministically.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, ascending by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, histogram)` pairs, ascending by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// One deterministic JSON object holding the whole snapshot.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":");
            write_json_f64(&mut out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":");
            h.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }

    /// A human-readable metrics table (fixed-width, one metric per line).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<28} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges\n");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:<28} {v:>12.3}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms\n");
            for (k, h) in &self.histograms {
                let s = h.summary();
                let _ = writeln!(
                    out,
                    "  {k:<28} n={:<8} mean={:<12.3} min={:<12.3} max={:<12.3} under={} over={}",
                    h.count(),
                    s.mean(),
                    if s.count() == 0 { f64::NAN } else { s.min() },
                    if s.count() == 0 { f64::NAN } else { s.max() },
                    h.underflow(),
                    h.overflow(),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_bucket_boundaries() {
        let mut h = Histogram::linear(0.0, 10.0, 5);
        assert_eq!(h.edges(), &[0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
        // Left-closed, right-open interior buckets.
        h.observe(0.0); // [0,2)
        h.observe(1.999); // [0,2)
        h.observe(2.0); // [2,4)
        h.observe(9.999); // [8,10)
        h.observe(10.0); // overflow (v >= last edge)
        h.observe(-0.001); // underflow
        assert_eq!(h.bucket_counts(), &[1, 2, 1, 0, 0, 1, 1]);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn log_spaced_bucket_boundaries() {
        let h = Histogram::log_spaced(1.0, 1000.0, 3);
        let e = h.edges();
        assert_eq!(e.len(), 4);
        assert!((e[0] - 1.0).abs() < 1e-9);
        assert!((e[1] - 10.0).abs() < 1e-9);
        assert!((e[2] - 100.0).abs() < 1e-9);
        assert!((e[3] - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn underflow_overflow_and_nonfinite() {
        let mut h = Histogram::linear(0.0, 1.0, 2);
        h.observe(-5.0);
        h.observe(f64::NEG_INFINITY);
        h.observe(7.0);
        h.observe(f64::INFINITY);
        h.observe(f64::NAN); // ignored entirely
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 4);
        // Summary only saw the finite observations.
        assert_eq!(h.summary().count(), 2);
        assert_eq!(h.summary().min(), -5.0);
        assert_eq!(h.summary().max(), 7.0);
    }

    #[test]
    fn count_equals_bucket_sum() {
        let mut h = Histogram::log_spaced(1.0, 1e6, 12);
        for i in 0..500 {
            h.observe((i as f64 * 37.7).abs() % 2e6);
        }
        assert_eq!(h.count(), h.bucket_counts().iter().sum::<u64>());
    }

    #[test]
    fn merge_adds_counts_and_summary() {
        let mut a = Histogram::linear(0.0, 10.0, 5);
        let mut b = Histogram::linear(0.0, 10.0, 5);
        for v in [1.0, 3.0, 11.0] {
            a.observe(v);
        }
        for v in [-2.0, 5.0, 5.5, 9.0] {
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 7);
        assert_eq!(a.count(), a.bucket_counts().iter().sum::<u64>());
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.summary().count(), 7);
        assert_eq!(a.summary().min(), -2.0);
        assert_eq!(a.summary().max(), 11.0);
    }

    #[test]
    #[should_panic(expected = "different bucket edges")]
    fn merge_rejects_mismatched_layout() {
        let mut a = Histogram::linear(0.0, 10.0, 5);
        a.merge(&Histogram::linear(0.0, 10.0, 4));
    }

    #[test]
    fn try_merge_reports_mismatch_without_panicking() {
        let mut a = Histogram::linear(0.0, 10.0, 5);
        a.observe(3.0);
        let before = a.bucket_counts().to_vec();
        let err = a.try_merge(&Histogram::linear(0.0, 12.0, 4)).unwrap_err();
        assert_eq!(err.self_edges, 6);
        assert_eq!(err.other_edges, 5);
        assert_eq!(err.self_span, [0.0, 10.0]);
        assert_eq!(err.other_span, [0.0, 12.0]);
        let msg = err.to_string();
        assert!(msg.contains("6 edges") && msg.contains("[0, 12]"), "{msg}");
        // The failed merge left the target untouched.
        assert_eq!(a.bucket_counts(), &before[..]);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn try_merge_succeeds_on_matching_layout() {
        let mut a = Histogram::log_spaced(1.0, 1e6, 12);
        let mut b = Histogram::log_spaced(1.0, 1e6, 12);
        a.observe(10.0);
        b.observe(1e5);
        assert!(a.try_merge(&b).is_ok());
        assert_eq!(a.count(), 2);
        assert_eq!(a.summary().max(), 1e5);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut m = MetricsRegistry::new();
        m.inc("frames_total");
        m.inc("frames_total");
        m.add("frames_total", 3);
        m.set_gauge("duration_s", 2.0);
        m.set_gauge("duration_s", 4.0); // last write wins
        m.histogram("snr_db", || Histogram::linear(-10.0, 50.0, 60)).observe(21.5);
        m.histogram("snr_db", || Histogram::linear(0.0, 1.0, 1)).observe(30.0);

        let s = m.snapshot();
        assert_eq!(s.counter("frames_total"), Some(5));
        assert_eq!(s.gauge("duration_s"), Some(4.0));
        let h = s.histogram("snr_db").unwrap();
        assert_eq!(h.count(), 2);
        // First-use config won: 60 interior buckets, not 1.
        assert_eq!(h.edges().len(), 61);
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_sorted() {
        let mut m = MetricsRegistry::new();
        m.inc("zeta");
        m.inc("alpha");
        m.set_gauge("g", 1.5);
        m.histogram("h", || Histogram::linear(0.0, 1.0, 2)).observe(0.4);
        let a = m.snapshot().to_json();
        let b = m.snapshot().to_json();
        assert_eq!(a, b);
        let alpha = a.find("\"alpha\"").unwrap();
        let zeta = a.find("\"zeta\"").unwrap();
        assert!(alpha < zeta, "counters must serialise sorted: {a}");
        assert!(a.contains("\"counts\":[0,1,0,0]"));
    }

    #[test]
    fn render_table_mentions_every_metric() {
        let mut m = MetricsRegistry::new();
        m.inc("frames_total");
        m.set_gauge("mean_snr_db", 21.0);
        m.histogram("airtime_ns", || Histogram::log_spaced(1e3, 1e9, 10)).observe(2e6);
        let t = m.snapshot().render_table();
        assert!(t.contains("frames_total"));
        assert!(t.contains("mean_snr_db"));
        assert!(t.contains("airtime_ns"));
    }
}
