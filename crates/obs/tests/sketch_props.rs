//! Property tests for the percentile sketches and histogram merging:
//! the error bounds `Sketch` documents hold on arbitrary data, and
//! layout-mismatched merges are structured errors, never panics.
//!
//! Runs on the in-tree `movr-testkit` harness (seeded generation,
//! greedy shrinking); default 96 cases per property, overridable with
//! `MOVR_TESTKIT_CASES` / `MOVR_TESTKIT_SEED`.

use movr_obs::{Histogram, Sketch, SketchSpec};
use movr_testkit::{
    f64_range, prop_assert, prop_assert_eq, property, usize_range, vec_of,
};

/// The exact `q`-quantile the sketch estimates: the value at rank
/// `⌈q·(n−1)⌉` of the sorted sample.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = q * ((sorted.len() - 1) as f64);
    sorted[rank.ceil() as usize]
}

property! {
    fn linear_sketch_quantile_error_is_at_most_one_bucket(
        values in vec_of(f64_range(0.0, 100.0), 1, 200),
        buckets in usize_range(4, 64),
        q in f64_range(0.0, 1.0),
    ) {
        let (lo, hi) = (0.0, 100.0);
        let mut sketch = Sketch::new(SketchSpec::linear(lo, hi, buckets));
        for &v in &values {
            sketch.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let exact = exact_quantile(&sorted, q);
        let est = sketch.quantile(q).expect("non-empty sketch");
        let width = (hi - lo) / (buckets as f64);
        prop_assert!(
            (est - exact).abs() <= width + 1e-9,
            "q={}: est {} vs exact {} exceeds bucket width {}",
            q, est, exact, width
        );
    }
}

property! {
    fn log_sketch_quantile_relative_error_is_at_most_one_ratio(
        values in vec_of(f64_range(1.0, 1e6), 1, 200),
        buckets in usize_range(8, 96),
        q in f64_range(0.0, 1.0),
    ) {
        let (lo, hi) = (1.0, 1e6);
        let mut sketch = Sketch::new(SketchSpec::log(lo, hi, buckets));
        for &v in &values {
            sketch.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let exact = exact_quantile(&sorted, q);
        let est = sketch.quantile(q).expect("non-empty sketch");
        let ratio = (hi / lo).powf(1.0 / (buckets as f64));
        let rel = if est >= exact { est / exact } else { exact / est };
        prop_assert!(
            rel <= ratio * (1.0 + 1e-9),
            "q={}: est {} vs exact {} exceeds bucket ratio {}",
            q, est, exact, ratio
        );
    }
}

property! {
    fn out_of_range_values_keep_quantiles_inside_observed_extremes(
        values in vec_of(f64_range(-500.0, 500.0), 1, 100),
        q in f64_range(0.0, 1.0),
    ) {
        // Range [0, 10): most generated values under- or overflow, the
        // worst case for the edge-bucket clamping.
        let mut sketch = Sketch::new(SketchSpec::linear(0.0, 10.0, 10));
        for &v in &values {
            sketch.observe(v);
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let est = sketch.quantile(q).expect("non-empty sketch");
        prop_assert!(
            est >= min.min(0.0) - 1e-9 && est <= max.max(10.0) + 1e-9,
            "q={}: est {} outside [{}, {}]",
            q, est, min, max
        );
    }
}

property! {
    fn mismatched_layouts_merge_to_errors_never_panics(
        lo_a in f64_range(0.0, 10.0),
        span in f64_range(1.0, 100.0),
        n_a in usize_range(1, 40),
        lo_b in f64_range(0.0, 10.0),
        n_b in usize_range(1, 40),
    ) {
        let mut a = Histogram::linear(lo_a, lo_a + span, n_a);
        let b = Histogram::linear(lo_b, lo_b + span, n_b);
        a.observe(lo_a);
        let same_layout = n_a == n_b && lo_a.to_bits() == lo_b.to_bits();
        match a.try_merge(&b) {
            Ok(()) => prop_assert!(same_layout, "merge accepted different layouts"),
            Err(e) => {
                prop_assert!(!same_layout, "merge rejected identical layouts: {}", e);
                // The error names both layouts; self is left usable.
                prop_assert_eq!(e.self_edges, n_a + 1);
                prop_assert_eq!(e.other_edges, n_b + 1);
                prop_assert!(e.to_string().contains("bucket layouts differ"), "{}", e);
                prop_assert_eq!(a.count(), 1);
            }
        }

        // Sketches wrap the same check: spec inequality is an error.
        let mut sa = Sketch::new(SketchSpec::log(1.0, 1e3, n_a));
        let sb = Sketch::new(SketchSpec::log(1.0, 1e3, n_b));
        prop_assert_eq!(sa.try_merge(&sb).is_ok(), n_a == n_b);
    }
}

property! {
    fn merged_sketch_counts_match_concatenated_observation(
        xs in vec_of(f64_range(-20.0, 120.0), 0, 80),
        ys in vec_of(f64_range(-20.0, 120.0), 0, 80),
    ) {
        let spec = SketchSpec::linear(0.0, 100.0, 25);
        let mut merged = Sketch::new(spec);
        let mut direct = Sketch::new(spec);
        let mut other = Sketch::new(spec);
        for &x in &xs {
            merged.observe(x);
            direct.observe(x);
        }
        for &y in &ys {
            other.observe(y);
            direct.observe(y);
        }
        merged.try_merge(&other).expect("same spec");
        prop_assert_eq!(merged.count(), direct.count());
        prop_assert_eq!(
            merged.histogram().bucket_counts(),
            direct.histogram().bucket_counts()
        );
        prop_assert_eq!(merged.histogram().underflow(), direct.histogram().underflow());
        prop_assert_eq!(merged.histogram().overflow(), direct.histogram().overflow());
        for q in [0.0, 0.5, 1.0] {
            prop_assert_eq!(merged.quantile(q), direct.quantile(q));
        }
    }
}
